#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <new>

#include "packet/packet_view.hpp"
#include "sink/sink.hpp"
#include "util/cycles.hpp"

namespace retina::core {

namespace {

using conntrack::ConnState;
using filter::FilterResult;
using filter::MatchKind;

/// Scoped cycle accounting for one stage; no-op when instrumentation is
/// off (the branch is well-predicted). With telemetry attached, the
/// same rdtsc delta also lands in the stage's latency histogram and
/// invocation counter — two relaxed stores on top of the measurement.
class StageScope {
 public:
  StageScope(PipelineStats& stats, Stage stage, bool enabled,
             const PipelineInstruments* inst = nullptr)
      : stats_(stats), stage_(stage), enabled_(enabled), inst_(inst) {
    if (enabled_) {
      stats_.stages.add(stage_);
      if (inst_ != nullptr) {
        if (auto* cell = inst_->stage_invocations[static_cast<int>(stage_)]) {
          cell->inc();
        }
      }
      start_ = util::rdtsc();
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  ~StageScope() {
    if (enabled_) {
      const auto cycles = util::rdtsc() - start_;
      stats_.stages.add_cycles(stage_, cycles);
      if (inst_ != nullptr) {
        if (auto* hist = inst_->stage_cycles[static_cast<int>(stage_)]) {
          hist->record(cycles);
        }
      }
    }
  }

 private:
  PipelineStats& stats_;
  Stage stage_;
  bool enabled_;
  const PipelineInstruments* inst_;
  std::uint64_t start_ = 0;
};

packet::FiveTuple oriented(const packet::FiveTuple& key, bool orig_first) {
  if (orig_first) return key;
  return packet::FiveTuple{key.dst, key.src, key.dst_port, key.src_port,
                           key.proto};
}

// Rough per-object heap estimates for the Fig. 8 memory accounting.
constexpr std::uint64_t kParserEstimateBytes = 1024;
constexpr std::uint64_t kOooPduEstimateBytes = 1024;  // held mbuf + handle
constexpr std::uint64_t kReassemblerBytes = sizeof(stream::StreamReassembler);

}  // namespace

Pipeline::Pipeline(const RuntimeConfig& config,
                   const Subscription& subscription,
                   const FilterEngine& filter,
                   const filter::FieldRegistry& field_registry,
                   const protocols::ParserRegistry& parser_registry)
    : config_(config),
      subscription_(subscription),
      filter_(filter),
      parser_registry_(parser_registry),
      table_(config.timeouts),
      frag_(stream::FragTable::Config{config.frag.max_bytes,
                                      config.frag.max_datagrams,
                                      config.frag.timeout_ns}) {
  // Which protocol parsers does this subscription need? Those named by
  // the filter, plus any the data type implies. A session-level
  // subscription with no protocol constraints probes everything.
  std::set<std::size_t> wanted = filter_.app_protos();
  for (const auto& name : subscription_.extra_parsers()) {
    wanted.insert(field_registry.require(name).app_proto_id);
  }
  if (subscription_.level() == Level::kSession && wanted.empty()) {
    for (const auto& name : parser_registry_.names()) {
      if (const auto* proto = field_registry.find(name)) {
        wanted.insert(proto->app_proto_id);
      }
    }
  }
  for (const auto app_id : wanted) {
    const auto& name = field_registry.app_proto_name(app_id);
    if (name.empty() || !parser_registry_.has(name)) continue;
    const auto* proto = field_registry.find(name);
    ProtoCandidate candidate;
    candidate.app_proto_id = app_id;
    candidate.name = name;
    candidate.over_tcp = proto->transport == "tcp";
    candidate.prototype = parser_registry_.create(name);
    const auto bit = 1u << candidates_.size();
    (candidate.over_tcp ? tcp_candidate_mask_ : udp_candidate_mask_) |= bit;
    candidates_.push_back(std::move(candidate));
  }
  if (config_.memory_sample_interval_ns > 0) {
    next_sample_ts_ = 0;  // first packet triggers the first sample
  }
}

void Pipeline::attach_telemetry(telemetry::MetricRegistry& registry,
                                std::size_t core,
                                telemetry::SpanRing* spans) {
  inst_.packets =
      &registry.counter("retina_packets_total",
                        "Packets polled from the receive queue").at(core);
  inst_.bytes =
      &registry.counter("retina_bytes_total",
                        "Wire bytes polled from the receive queue").at(core);
  inst_.conns_created =
      &registry.counter("retina_conns_created_total",
                        "Connections inserted into the table").at(core);
  inst_.conns_expired =
      &registry.counter("retina_conns_expired_total",
                        "Connections removed by inactivity timeout").at(core);
  inst_.conns_terminated =
      &registry.counter("retina_conns_terminated_total",
                        "Connections closed by FIN/RST").at(core);
  inst_.sessions =
      &registry.counter("retina_sessions_parsed_total",
                        "Application-layer sessions parsed").at(core);
  inst_.callbacks =
      &registry.counter("retina_callbacks_total",
                        "Subscription callback invocations").at(core);
  inst_.live_conns =
      &registry.gauge("retina_live_connections",
                      "Connections currently tracked").at(core);
  inst_.state_bytes =
      &registry.gauge("retina_state_bytes",
                      "Approximate bytes of connection state held").at(core);
  for (int i = 0; i < static_cast<int>(Stage::kCount); ++i) {
    const auto stage = static_cast<Stage>(i);
    inst_.stage_invocations[i] =
        &registry.counter("retina_stage_invocations_total",
                          "Times each pipeline stage ran", "stage",
                          stage_name(stage)).at(core);
    inst_.stage_cycles[i] =
        &registry.histogram("retina_stage_cycles",
                            "Per-invocation CPU cycles of each stage",
                            "stage", stage_name(stage)).at(core);
  }
  inst_.burst_occupancy =
      &registry.histogram("retina_burst_occupancy",
                          "Packets per received burst").at(core);
  inst_.burst_cycles =
      &registry.histogram("retina_burst_cycles",
                          "CPU cycles per processed burst").at(core);
  for (int i = 0; i < static_cast<int>(overload::ShedStage::kCount); ++i) {
    const auto stage = static_cast<overload::ShedStage>(i);
    inst_.shed_cells[i] =
        &registry.counter("retina_shed_total",
                          "Work refused by overload shedding", "stage",
                          overload::shed_stage_name(stage)).at(core);
  }
  inst_.migrations =
      &registry.counter("retina_migrations_total",
                        "Connections adopted after an RSS rebalance moved "
                        "their RETA bucket to this core").at(core);
  inst_.frag_fragments =
      &registry.counter("retina_frag_fragments_total",
                        "IPv4 fragments offered to reassembly").at(core);
  inst_.frag_reassembled =
      &registry.counter("retina_frag_reassembled_total",
                        "IPv4 datagrams rebuilt from fragments").at(core);
  inst_.frag_dropped =
      &registry.counter("retina_frag_dropped_total",
                        "Fragments dropped by budget, timeout, or "
                        "validation").at(core);
  inst_.frag_held_bytes =
      &registry.gauge("retina_frag_held_bytes",
                      "Bytes of fragment data held awaiting "
                      "reassembly").at(core);
  inst_.unknown_ethertype =
      &registry.counter("retina_parse_unknown_ethertype",
                        "Frames whose innermost ethertype the parser does "
                        "not understand").at(core);
  spans_ = spans;
}

void Pipeline::shed(overload::ShedStage stage) {
  ++stats_.shed[static_cast<int>(stage)];
  if (auto* cell = inst_.shed_cells[static_cast<int>(stage)]) cell->inc();
}

bool Pipeline::admit_connection() const {
  if (degraded_to(overload::DegradeLevel::kCountOnly)) return false;
  const auto& policy = config_.overload;
  if (!policy.enabled) return true;
  if (policy.max_tracked_connections != 0 &&
      table_.size() >= policy.max_tracked_connections) {
    return false;
  }
  if (policy.max_state_bytes != 0) {
    const auto heap =
        static_cast<std::uint64_t>(heap_bytes_ > 0 ? heap_bytes_ : 0);
    if (table_.approx_bytes_after_insert() + heap >= policy.max_state_bytes) {
      return false;
    }
  }
  return true;
}

bool Pipeline::buffering_allowed() const {
  if (degraded_to(overload::DegradeLevel::kShedReassembly)) return false;
  const auto& policy = config_.overload;
  if (policy.enabled && policy.max_state_bytes != 0 &&
      approx_state_bytes() >= policy.max_state_bytes) {
    return false;
  }
  return true;
}

bool Pipeline::reassembly_shed() const {
  if (degraded_to(overload::DegradeLevel::kShedReassembly)) return true;
  const auto& policy = config_.overload;
  return policy.enabled && policy.max_reassembly_bytes != 0 &&
         reasm_hold_bytes_ >=
             static_cast<std::int64_t>(policy.max_reassembly_bytes);
}

bool Pipeline::parse_budget_ok(std::uint64_t ts_ns) {
  const auto rate = config_.overload.parse_cycles_per_sec;
  if (!config_.overload.enabled || rate == 0) return true;
  if (!parse_bucket_primed_) {
    // Start with one virtual second of budget (also the bucket cap, so
    // an idle trace cannot bank unbounded credit).
    parse_tokens_ = static_cast<std::int64_t>(rate);
    parse_refill_ts_ = ts_ns;
    parse_bucket_primed_ = true;
  }
  if (ts_ns > parse_refill_ts_) {
    const double earned = static_cast<double>(ts_ns - parse_refill_ts_) /
                          1e9 * static_cast<double>(rate);
    parse_tokens_ = std::min<std::int64_t>(
        parse_tokens_ + static_cast<std::int64_t>(earned),
        static_cast<std::int64_t>(rate));
    parse_refill_ts_ = ts_ns;
  }
  return parse_tokens_ > 0;
}

void Pipeline::settle_without_parsing(ConnId id, ConnEntry& entry) {
  if (subscription_.level() == Level::kSession) {
    // Sessions are exactly what is being shed: tombstone the
    // connection so later packets cost a lookup and nothing more.
    // Not a filter decision, so it is not counted as one.
    to_dropped(entry, /*count_filter_drop=*/false);
    return;
  }
  if (entry.filter_matched) {
    flush_on_match(entry);
    to_track(entry);
    return;
  }
  // Filter unresolved. Resolve it the way a failed probe would: with
  // the protocol unknown. Terminal -> Track, impossible -> dropped.
  if (!entry.conn_filter_ran) {
    entry.app_proto = 0;
    run_conn_filter(id, entry);
  }
  if (!entry.dropped && !entry.filter_matched &&
      entry.state != ConnState::kTrack) {
    // Still waiting on session predicates we will never evaluate: the
    // connection can never match now.
    to_dropped(entry, /*count_filter_drop=*/false);
  } else if (!entry.dropped && entry.state != ConnState::kTrack) {
    flush_on_match(entry);
    to_track(entry);
  }
}

std::uint64_t Pipeline::approx_state_bytes() const {
  const auto heap = heap_bytes_ > 0 ? heap_bytes_ : 0;
  return table_.approx_bytes() + static_cast<std::uint64_t>(heap) +
         frag_.held_bytes();
}

void Pipeline::maybe_sample_memory(std::uint64_t ts_ns) {
  if (config_.memory_sample_interval_ns == 0) return;
  if (ts_ns < next_sample_ts_) return;
  stats_.memory_samples.push_back(
      MemorySample{ts_ns, table_.size(), approx_state_bytes()});
  next_sample_ts_ = ts_ns + config_.memory_sample_interval_ns;
}

void Pipeline::process(packet::Mbuf mbuf) {
  const std::uint64_t t0 = util::rdtsc();
  ++stats_.packets;
  stats_.bytes += mbuf.length();
  if (inst_.packets != nullptr) {
    inst_.packets->inc();
    inst_.bytes->add(mbuf.length());
  }
  const auto view = packet::PacketView::parse(mbuf);
  if (view && view->unknown_ethertype()) {
    ++stats_.unknown_ethertype;
    if (inst_.unknown_ethertype != nullptr) inst_.unknown_ethertype->inc();
  }
  process_one(mbuf, view, /*canon=*/nullptr, /*canon_hash=*/0,
              /*pf_hint=*/nullptr);
  stats_.busy_cycles += util::rdtsc() - t0;
}

void Pipeline::process_burst(std::span<packet::Mbuf> burst) {
  // Oversized spans are processed kMaxBurst at a time; each chunk gets
  // its own batch sweep and cycle accounting.
  while (burst.size() > kMaxBurst) {
    process_burst(burst.first(kMaxBurst));
    burst = burst.subspan(kMaxBurst);
  }
  if (burst.empty()) return;
  const std::uint64_t t0 = util::rdtsc();
  const std::size_t n = burst.size();
  using Mask = packet::SoaBurstView::Mask;

  // Timer/sampling housekeeping is hoisted when provably inert: if no
  // wheel tick boundary falls at or before the newest timestamp in the
  // burst (and memory sampling is off), every per-packet advance()
  // would return at its gate, so one check covers the burst. Any burst
  // that *does* cross a boundary falls back to exact per-packet
  // housekeeping — expiry interleaving stays identical to the
  // per-packet path.
  std::uint64_t burst_max_ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    burst_max_ts = std::max(burst_max_ts, burst[i].timestamp_ns());
  }
  const bool housekeeping = config_.memory_sample_interval_ns != 0 ||
                            table_.timers_due(std::max(last_ts_, burst_max_ts));

  // Batch sweep (columnar, not software-pipelined): the whole burst is
  // parsed into the SoA view in one pass (frame prefetch runs inside,
  // a few lanes ahead of the parse), then every distinct packet-layer
  // predicate is evaluated across all 32 lanes at once through
  // filter::Evaluator::packet_filter_batch — SIMD compares over the
  // header columns where the backend supports them. All batched work
  // is stateless (parse, stateless filter, hashing), so running it
  // ahead of the stateful pass cannot change results: packets still
  // hit conntrack/reassembly in arrival order, and the SoA view
  // materializes the same PacketViews the per-packet path would parse.
  soa_.parse(burst);
  if (const Mask unknown = soa_.unknown_ethertype_mask()) {
    const auto k = static_cast<std::uint64_t>(std::popcount(unknown));
    stats_.unknown_ethertype += k;
    if (inst_.unknown_ethertype != nullptr) inst_.unknown_ethertype->add(k);
  }

  // One logical packet-filter invocation per packet — the stage counter
  // totals stay identical to the per-packet path's; only the cycle cost
  // is measured once for the whole burst (and recorded as one histogram
  // sample covering n invocations).
  std::array<FilterResult, kMaxBurst> pf;
  {
    const bool instr = config_.instrument_stages;
    std::uint64_t f0 = 0;
    if (instr) {
      stats_.stages.add(Stage::kPacketFilter, n);
      if (auto* cell =
              inst_.stage_invocations[static_cast<int>(Stage::kPacketFilter)]) {
        cell->add(n);
      }
      f0 = util::rdtsc();
    }
    filter_.packet_filter_batch(soa_, pf.data());
    if (instr) {
      const auto cycles = util::rdtsc() - f0;
      stats_.stages.add_cycles(Stage::kPacketFilter, cycles);
      if (auto* hist =
              inst_.stage_cycles[static_cast<int>(Stage::kPacketFilter)]) {
        hist->record(cycles);
      }
    }
  }

  // Canonicalize + hash the five-tuples of exactly the lanes the
  // stateful pass will look up — matched, tuple-bearing, and not
  // consumed outright by a terminal packet-level match. Hashing runs as
  // one tight loop (independent FNV chains overlap in the pipeline),
  // then the connection-index probe lines are prefetched for every
  // lane before the first lookup needs one.
  const bool packet_level = subscription_.level() == Level::kPacket;
  Mask want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!pf[i].matched()) continue;
    if (pf[i].terminal() && packet_level) continue;
    want |= Mask{1} << i;
  }
  soa_.hash_tuples(want);
  const Mask tupled = want & soa_.tuple_mask();
  std::array<std::uint8_t, kMaxBurst> tupled_lanes;
  std::size_t n_tupled = 0;
  for (Mask m = tupled; m != 0; m &= m - 1) {
    const auto i = static_cast<unsigned>(std::countr_zero(m));
    tupled_lanes[n_tupled++] = static_cast<std::uint8_t>(i);
    table_.prefetch_hashed(soa_.hash(i));
  }

  // Stateful pass, in arrival order. Lanes the filter rejected are
  // skipped entirely when housekeeping was hoisted (process_one would
  // return immediately anyway); connection *slots* are prefetched a
  // couple of tupled lanes ahead — the resolved id is only a cache
  // hint, the lookup below re-resolves, so slot reuse cannot alias.
  constexpr std::size_t kSlotDistance = 2;
  const Mask frag_lanes = soa_.frag_mask();
  std::uint64_t bytes_acc = 0;
  std::size_t next_tupled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bytes_acc += burst[i].length();
    const bool is_tupled = (tupled >> i) & 1u;
    if (is_tupled) {
      if (next_tupled + kSlotDistance < n_tupled) {
        table_.prefetch_slot_hashed(
            soa_.hash(tupled_lanes[next_tupled + kSlotDistance]));
      }
      ++next_tupled;
    }
    // Fragment lanes never carry a tuple, so the filter cannot route
    // them — but they must still reach reassembly.
    if (!housekeeping && !pf[i].matched() && !((frag_lanes >> i) & 1u)) {
      continue;
    }
    process_one(burst[i], soa_.view(i), is_tupled ? &soa_.canon(i) : nullptr,
                is_tupled ? soa_.hash(i) : 0, &pf[i], housekeeping);
  }

  // Batched accounting: one counter update per burst instead of one per
  // packet. Totals are identical to the per-packet path's.
  if (!housekeeping) last_ts_ = std::max(last_ts_, burst_max_ts);
  stats_.packets += n;
  stats_.bytes += bytes_acc;
  if (inst_.packets != nullptr) {
    inst_.packets->add(n);
    inst_.bytes->add(bytes_acc);
  }

  const std::uint64_t cycles = util::rdtsc() - t0;
  stats_.busy_cycles += cycles;
  if (inst_.burst_occupancy != nullptr) {
    inst_.burst_occupancy->record(burst.size());
    inst_.burst_cycles->record(cycles);
  }
}

void Pipeline::prefetch_frames(std::span<const packet::Mbuf> burst) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  // Only the burst's head: these are the packets process_burst() will
  // parse before its own staggered prefetch schedule gets ahead, and a
  // short run of prefetches doesn't flood the fill buffers.
  const std::size_t head = std::min<std::size_t>(burst.size(), 8);
  for (std::size_t i = 0; i < head; ++i) {
    const auto bytes = burst[i].bytes();
    if (bytes.empty()) continue;
    __builtin_prefetch(bytes.data(), /*rw=*/0, /*locality=*/3);
    if (bytes.size() > 64) {
      __builtin_prefetch(bytes.data() + 64, /*rw=*/0, /*locality=*/3);
    }
  }
#else
  (void)burst;
#endif
}

void Pipeline::process_one(packet::Mbuf& mbuf,
                           const std::optional<packet::PacketView>& view,
                           const packet::FiveTuple::Canonical* canon,
                           std::uint64_t canon_hash,
                           const filter::FilterResult* pf_hint,
                           bool housekeeping) {
  // Packet/byte counters are the caller's job: process() bumps them per
  // packet, process_burst() folds a whole burst into one update. The
  // burst path also passes housekeeping=false when it has proved the
  // whole burst timer-quiescent (no tick boundary before the burst's
  // max timestamp, memory sampling off) — every call below would be a
  // gated no-op, so skipping them is exactly equivalent.
  if (housekeeping) {
    last_ts_ = std::max(last_ts_, mbuf.timestamp_ns());

    // Expire connections whose deadline passed (hierarchical timer
    // wheel, lazy rescheduling).
    table_.advance(last_ts_, [this](ConnId id, ConnEntry& entry) {
      ++stats_.conns_expired;
      if (inst_.conns_expired != nullptr) inst_.conns_expired->inc();
      if (spans_ != nullptr) {
        spans_->record(telemetry::SpanEvent::kExpired,
                       entry.record.tuple.hash(), last_ts_);
      }
      terminate_conn(id, entry, TerminateReason::kExpired,
                     /*remove_from_table=*/false);
    });
    maybe_sample_memory(last_ts_);
  }

  FilterResult pf_result = FilterResult::no_match();
  if (pf_hint != nullptr) {
    // Burst path: the filter already ran (and was accounted) in pass 1.
    pf_result = *pf_hint;
  } else {
    StageScope scope(stats_, Stage::kPacketFilter, config_.instrument_stages, &inst_);
    if (view) pf_result = filter_.packet_filter(*view);
  }
  // IPv4 fragments divert to reassembly before any delivery decision:
  // they carry no L4 header, so neither the filter nor conntrack can
  // act on them, and a presence-only match (e.g. "ipv4") must not leak
  // raw fragments to a packet-level callback. The rebuilt datagram
  // re-enters through the full pipeline below.
  if (view && view->is_fragment()) {
    handle_fragment(*view);
    const auto held_now = approx_state_bytes();
    if (held_now > stats_.peak_state_bytes) {
      stats_.peak_state_bytes = held_now;
    }
    if (inst_.live_conns != nullptr) {
      inst_.live_conns->set(table_.size());
      inst_.state_bytes->set(held_now);
    }
    return;
  }

  if (!pf_result.matched()) {
    return;
  }

  // Packet-level subscription satisfied outright: invoke the callback
  // immediately and bypass all stateful processing (paper §5.1).
  if (pf_result.terminal() && subscription_.level() == Level::kPacket) {
    StageScope scope(stats_, Stage::kCallback, config_.instrument_stages, &inst_);
    subscription_.deliver_packet(view ? view->frame() : mbuf);
    ++stats_.delivered_packets;
    if (inst_.callbacks != nullptr) inst_.callbacks->inc();
    return;
  }

  if (view && view->five_tuple()) {
    // The burst path hands in the canonical tuple (and its hash)
    // computed during its prefetch pass; the per-packet path computes
    // them here, keeping canonicalization lazy for filtered-out
    // traffic.
    if (canon != nullptr) {
      handle_stateful(mbuf, *view, pf_result, *canon, canon_hash);
    } else {
      const auto lazy = view->five_tuple()->canonical();
      handle_stateful(mbuf, *view, pf_result, lazy, lazy.key.hash());
    }
  }
  const auto state_now = approx_state_bytes();
  if (state_now > stats_.peak_state_bytes) {
    stats_.peak_state_bytes = state_now;
  }
  if (inst_.live_conns != nullptr) {
    inst_.live_conns->set(table_.size());
    inst_.state_bytes->set(state_now);
  }
}

void Pipeline::handle_fragment(const packet::PacketView& view) {
  // The overload ladder's shed-reassembly rung (or the reassembly byte
  // budget) stops fragment admission entirely — a fragment flood then
  // costs one parse and one branch per fragment, nothing held.
  if (reassembly_shed()) {
    shed(overload::ShedStage::kReassembly);
    return;
  }
  const auto before = frag_.stats();
  auto rebuilt = frag_.offer(view);
  const auto& fs = frag_.stats();
  stats_.frag_fragments = fs.fragments;
  stats_.frag_reassembled = fs.reassembled;
  stats_.frag_duplicates = fs.duplicates;
  stats_.frag_dropped_budget = fs.dropped_budget;
  stats_.frag_dropped_timeout = fs.dropped_timeout;
  stats_.frag_dropped_malformed = fs.dropped_malformed;
  if (inst_.frag_fragments != nullptr) {
    inst_.frag_fragments->inc();
    const auto dropped =
        (fs.dropped_budget - before.dropped_budget) +
        (fs.dropped_timeout - before.dropped_timeout) +
        (fs.dropped_malformed - before.dropped_malformed);
    if (dropped > 0) inst_.frag_dropped->add(dropped);
    if (fs.reassembled != before.reassembled) inst_.frag_reassembled->inc();
    inst_.frag_held_bytes->set(frag_.held_bytes());
  }
  if (rebuilt) {
    // The rebuilt datagram is byte-identical to the pre-fragmentation
    // original; run it through the full pipeline. Housekeeping already
    // ran for the fragment that completed it, and rx packet/byte
    // counters stay untouched — the datagram was never polled.
    const auto rview = packet::PacketView::parse(*rebuilt);
    process_one(*rebuilt, rview, /*canon=*/nullptr, /*canon_hash=*/0,
                /*pf_hint=*/nullptr, /*housekeeping=*/false);
  }
}

void Pipeline::handle_stateful(packet::Mbuf& mbuf,
                               const packet::PacketView& view,
                               const FilterResult& pf_result,
                               const packet::FiveTuple::Canonical& canon,
                               std::uint64_t key_hash) {
  const auto ts = mbuf.timestamp_ns();

  ConnId id;
  {
    StageScope scope(stats_, Stage::kConnTracking, config_.instrument_stages, &inst_);
    id = table_.find_hashed(canon.key, key_hash);
    if (id == Table::kInvalid) {
      // Admission control: at >= kCountOnly, or with a budget (conn
      // count / projected state bytes) exhausted, the flow is counted
      // at the packet layer and never tracked.
      if (!admit_connection()) {
        shed(overload::ShedStage::kConnCreate);
        return;
      }
      id = create_conn(canon.key, canon.originator_is_first, pf_result,
                       view.tcp().has_value(), ts, mbuf.rss_hash());
    } else {
      table_.touch(id, ts);
    }
  }

  ConnEntry& entry = table_.get(id);
  const bool from_orig =
      canon.originator_is_first == entry.from_first_is_orig;
  update_record(entry, view, from_orig, ts);
  if (entry.record.pkts_up > 0 && entry.record.pkts_down > 0 &&
      !entry.record.established) {
    entry.record.established = true;
    table_.mark_established(id, ts);
  }

  if (!entry.dropped) {
    switch (entry.state) {
      case ConnState::kTrack:
        if (subscription_.level() == Level::kPacket) {
          StageScope scope(stats_, Stage::kCallback,
                           config_.instrument_stages, &inst_);
          subscription_.deliver_packet(view.frame());
          ++stats_.delivered_packets;
          if (inst_.callbacks != nullptr) inst_.callbacks->inc();
        } else if (subscription_.level() == Level::kStream) {
          // Streams keep reassembling in Track: in-order delivery is
          // the subscription's data product.
          feed_pdus(id, entry, mbuf, view, from_orig);
        }
        break;
      case ConnState::kProbe:
      case ConnState::kParse:
        if (subscription_.level() == Level::kPacket) {
          // Hold packets until the filter resolves (Fig. 4a) — unless
          // shedding says this buffer may not grow.
          if (!buffering_allowed()) {
            shed(overload::ShedStage::kBuffering);
          } else {
            // Buffer the delivered representation — the (inner) frame —
            // so a later flush replays exactly what immediate delivery
            // would have produced.
            const packet::Mbuf& frame = view.frame();
            if (entry.buffered.size() >= config_.conn_packet_buffer) {
              heap_bytes_ -= entry.buffered.front().length();
              entry.buffered_bytes -= entry.buffered.front().length();
              entry.buffered.erase(entry.buffered.begin());
            }
            heap_bytes_ += frame.length();
            entry.buffered_bytes += frame.length();
            entry.buffered.push_back(frame);
          }
        }
        feed_pdus(id, entry, mbuf, view, from_orig);
        break;
      case ConnState::kDelete:
        break;  // unreachable: kDelete is applied, never stored
    }
  }

  // Natural termination: RST, or the bare ACK completing a FIN/FIN
  // close (removing on the second FIN would let the final ACK recreate
  // a ghost connection).
  const bool pure_ack = view.tcp() && view.tcp()->ack_flag() &&
                        !view.tcp()->syn() && !view.tcp()->fin() &&
                        !view.tcp()->rst() && view.l4_payload().empty();
  if (entry.record.saw_rst || (entry.fin_up && entry.fin_down && pure_ack)) {
    ++stats_.conns_terminated;
    if (inst_.conns_terminated != nullptr) inst_.conns_terminated->inc();
    terminate_conn(id, entry, TerminateReason::kNatural,
                   /*remove_from_table=*/true);
    return;  // entry removed; nothing left to offload
  }

  if (offload_requester_ != nullptr) {
    maybe_request_offload(id, entry);
  }
}

void Pipeline::maybe_request_offload(ConnId id, ConnEntry& entry) {
  if (entry.offload_pending || entry.offload_active) return;
  nic::OffloadAction action;
  if (entry.dropped) {
    // The filter said no: hardware can drop the rest of the flow.
    action = nic::OffloadAction::kDrop;
  } else if (entry.state == conntrack::ConnState::kTrack &&
             entry.filter_matched &&
             subscription_.level() == Level::kConnection) {
    // Connection-level match in Track: software only counts packets
    // from here on, which hardware counters reproduce exactly.
    action = nic::OffloadAction::kCount;
  } else {
    // Packet/stream/session levels still need per-packet callbacks,
    // PDUs, or parsing — not offloadable.
    return;
  }
  OffloadRequest req;
  req.key = table_.key_of(id);
  req.rss_hash = entry.rss_hash;
  req.from_first_is_orig = entry.from_first_is_orig;
  req.is_tcp = entry.is_tcp;
  req.action = action;
  if (offload_requester_->request_install(offload_core_, req)) {
    entry.offload_pending = true;
  }
}

bool Pipeline::offload_park(const packet::FiveTuple& key,
                            nic::OffloadSeed& seed_out) {
  const ConnId id = table_.find(key);
  if (id == Table::kInvalid) return false;
  ConnEntry& entry = table_.get(id);
  if (!entry.offload_pending || entry.offload_active) return false;
  seed_out.max_seq_end = {entry.max_seq_end[0], entry.max_seq_end[1]};
  seed_out.last_seq = {entry.last_seq[0], entry.last_seq[1]};
  seed_out.seq_seen = {entry.seq_seen[0], entry.seq_seen[1]};
  entry.offload_active = true;
  entry.offload_park_pkts = entry.record.pkts_up + entry.record.pkts_down;
  table_.park(id);
  return true;
}

bool Pipeline::offload_merge(const nic::OffloadEvictRecord& rec) {
  const ConnId id = table_.find(rec.key);
  if (id == Table::kInvalid) return false;
  ConnEntry& entry = table_.get(id);
  auto& r = entry.record;
  // If software saw packets since park (punted flag segment processed
  // out from under a racing eviction, or a migration replay), its seq
  // state is newer than the rule's final snapshot — keep it.
  const bool seq_current =
      r.pkts_up + r.pkts_down == entry.offload_park_pkts;
  const auto& d = rec.deltas;
  r.pkts_up += d.pkts_up;
  r.pkts_down += d.pkts_down;
  r.bytes_up += d.bytes_up;
  r.bytes_down += d.bytes_down;
  r.payload_up += d.payload_up;
  r.payload_down += d.payload_down;
  r.ooo_up += d.ooo_up;
  r.ooo_down += d.ooo_down;
  r.dup_up += d.dup_up;
  r.dup_down += d.dup_down;
  r.last_ts_ns = std::max(r.last_ts_ns, d.last_ts_ns);
  if (seq_current && d.pkts() > 0) {
    entry.max_seq_end[0] = rec.seq.max_seq_end[0];
    entry.max_seq_end[1] = rec.seq.max_seq_end[1];
    entry.last_seq[0] = rec.seq.last_seq[0];
    entry.last_seq[1] = rec.seq.last_seq[1];
    entry.seq_seen[0] = rec.seq.seq_seen[0];
    entry.seq_seen[1] = rec.seq.seq_seen[1];
  }
  if (r.pkts_up > 0 && r.pkts_down > 0 && !r.established) {
    r.established = true;
    table_.mark_established(id, r.last_ts_ns);
  }
  entry.offload_pending = false;
  entry.offload_active = false;
  // Unpark: resume expiry from the flow's true last activity.
  table_.touch(id, r.last_ts_ns);
  return true;
}

void Pipeline::offload_clear_pending(const packet::FiveTuple& key) {
  const ConnId id = table_.find(key);
  if (id == Table::kInvalid) return;
  ConnEntry& entry = table_.get(id);
  entry.offload_pending = false;
  if (entry.offload_active) {
    entry.offload_active = false;
    table_.touch(id, entry.record.last_ts_ns);
  }
}

Pipeline::ConnId Pipeline::create_conn(const packet::FiveTuple& canonical_key,
                                       bool originator_is_first,
                                       const FilterResult& pf_result,
                                       bool is_tcp, std::uint64_t ts_ns,
                                       std::uint32_t rss_hash) {
  ConnEntry entry;
  entry.from_first_is_orig = originator_is_first;
  entry.is_tcp = is_tcp;
  entry.resume_node = pf_result.node_id;
  entry.rss_hash = rss_hash;
  entry.probe_alive = is_tcp ? tcp_candidate_mask_ : udp_candidate_mask_;
  entry.record.tuple = oriented(canonical_key, originator_is_first);
  entry.record.first_ts_ns = ts_ns;
  entry.record.last_ts_ns = ts_ns;

  if (pf_result.terminal()) {
    entry.filter_matched = true;
    entry.early_matched = true;
    entry.conn_filter_ran = true;
    // Fully matched connection- and stream-level subscriptions need no
    // parsing at all — track (and, for streams, keep reassembling)
    // without ever probing (lazy principle, §5.2).
    entry.state = (subscription_.level() == Level::kConnection ||
                   subscription_.level() == Level::kStream)
                      ? ConnState::kTrack
                      : ConnState::kProbe;
  } else {
    entry.state = ConnState::kProbe;
  }

  // Degradation ladder, session rung: a connection that would start
  // probing settles immediately instead — no parser is ever built for
  // it. (id is not assigned yet; settle_without_parsing ignores it.)
  if (entry.state == ConnState::kProbe &&
      degraded_to(overload::DegradeLevel::kShedSessions)) {
    shed(overload::ShedStage::kSession);
    settle_without_parsing(Table::kInvalid, entry);
  }

  ++stats_.conns_created;
  if (inst_.conns_created != nullptr) inst_.conns_created->inc();
  if (spans_ != nullptr) {
    spans_->record(telemetry::SpanEvent::kConnCreated, canonical_key.hash(),
                   ts_ns);
  }
  return table_.insert(canonical_key, std::move(entry), ts_ns);
}

void Pipeline::update_record(ConnEntry& entry, const packet::PacketView& view,
                             bool from_orig, std::uint64_t ts_ns) {
  auto& rec = entry.record;
  rec.last_ts_ns = std::max(rec.last_ts_ns, ts_ns);
  // Connection records describe the *inner* flow: for tunneled frames
  // the byte counters use the decapsulated frame, so a tunneled trace
  // produces records identical to its plain original.
  const auto wire_bytes = view.frame().length();
  const auto payload_bytes = view.l4_payload().size();
  if (from_orig) {
    ++rec.pkts_up;
    rec.bytes_up += wire_bytes;
    rec.payload_up += payload_bytes;
  } else {
    ++rec.pkts_down;
    rec.bytes_down += wire_bytes;
    rec.payload_down += payload_bytes;
  }
  if (view.tcp()) {
    const auto& tcp = *view.tcp();
    if (tcp.syn() && !tcp.ack_flag()) rec.saw_syn = true;
    if (tcp.syn() && tcp.ack_flag()) rec.saw_synack = true;
    if (tcp.rst()) rec.saw_rst = true;
    if (tcp.fin()) {
      rec.saw_fin = true;
      (from_orig ? entry.fin_up : entry.fin_down) = true;
    }
    // Wire-order reordering/retransmission accounting: a segment whose
    // sequence starts before the direction's high-water mark arrived
    // out of order; if it also ends at or before the mark, it is a
    // pure retransmission.
    if (payload_bytes > 0 || tcp.syn() || tcp.fin()) {
      const int dir = from_orig ? 0 : 1;
      const std::uint32_t seq = tcp.seq();
      std::uint32_t span = static_cast<std::uint32_t>(payload_bytes);
      if (tcp.syn()) ++span;
      if (tcp.fin()) ++span;
      const std::uint32_t end = seq + span;
      if (entry.seq_seen[dir] &&
          static_cast<std::int32_t>(seq - entry.max_seq_end[dir]) < 0) {
        // Regression below the high-water mark: a repeat of the same
        // starting sequence is (heuristically) a retransmission, any
        // other regression is reordering.
        if (seq == entry.last_seq[dir]) {
          ++(from_orig ? rec.dup_up : rec.dup_down);
        } else {
          ++(from_orig ? rec.ooo_up : rec.ooo_down);
        }
      }
      if (!entry.seq_seen[dir] ||
          static_cast<std::int32_t>(end - entry.max_seq_end[dir]) > 0) {
        entry.max_seq_end[dir] = end;
      }
      entry.last_seq[dir] = seq;
      entry.seq_seen[dir] = true;
    }
  }
}

void Pipeline::feed_pdus(ConnId id, ConnEntry& entry, packet::Mbuf& mbuf,
                         const packet::PacketView& view, bool from_orig) {
  if (!entry.is_tcp) {
    // UDP: each datagram is already an in-order PDU.
    if (view.l4_payload().empty()) return;
    stream::L4Pdu pdu;
    pdu.mbuf = view.frame();
    pdu.payload = view.l4_payload();
    pdu.from_originator = from_orig;
    pdu.ts_ns = mbuf.timestamp_ns();
    if (subscription_.level() == Level::kStream) {
      // The ladder rung stops all stream delivery; the reassembly byte
      // budget does not apply here (datagrams hold nothing).
      if (degraded_to(overload::DegradeLevel::kShedReassembly)) {
        shed(overload::ShedStage::kReassembly);
      } else {
        stream_pdu(entry, pdu);
      }
    }
    handle_pdu(id, entry, std::move(pdu));
    return;
  }

  // TCP reassembly shed: on the kShedReassembly rung (or past the
  // reassembly-byte budget) segments bypass the reassembler entirely.
  // The connection record still accumulates (update_record already
  // ran); only stream reconstruction and parsing lose this data.
  if (reassembly_shed()) {
    shed(overload::ShedStage::kReassembly);
    return;
  }

  const auto& tcp = *view.tcp();
  stream::L4Pdu pdu;
  pdu.mbuf = view.frame();
  pdu.payload = view.l4_payload();
  pdu.seq = tcp.seq();
  pdu.tcp_flags = tcp.flags();
  pdu.from_originator = from_orig;
  pdu.ts_ns = mbuf.timestamp_ns();

  auto& reasm = from_orig ? entry.reasm_up : entry.reasm_down;
  if (!reasm) {
    reasm = std::make_unique<stream::StreamReassembler>(config_.ooo_capacity);
    heap_bytes_ += kReassemblerBytes;
  }

  std::vector<stream::L4Pdu> ready;
  {
    StageScope scope(stats_, Stage::kReassembly, config_.instrument_stages, &inst_);
    const auto pending_before = reasm->pending();
    reasm->push(std::move(pdu), ready);
    const auto pending_after = reasm->pending();
    const auto delta = (static_cast<std::int64_t>(pending_after) -
                        static_cast<std::int64_t>(pending_before)) *
                       static_cast<std::int64_t>(kOooPduEstimateBytes);
    heap_bytes_ += delta;
    reasm_hold_bytes_ += delta;
  }

  for (auto& ready_pdu : ready) {
    if (entry.dropped) break;
    if (ready_pdu.len() == 0) continue;  // bare SYN/FIN/ACK
    if (subscription_.level() == Level::kStream) {
      stream_pdu(entry, ready_pdu);  // buffer or deliver the chunk
      if (entry.dropped) break;
    }
    if (entry.state == ConnState::kProbe ||
        entry.state == ConnState::kParse) {
      handle_pdu(id, entry, std::move(ready_pdu));
    }
  }
}

void Pipeline::deliver_stream_chunk(const ConnEntry& entry,
                                    const stream::L4Pdu& pdu) {
  StageScope scope(stats_, Stage::kCallback, config_.instrument_stages, &inst_);
  StreamChunk chunk;
  chunk.tuple = entry.record.tuple;
  chunk.ts_ns = pdu.ts_ns;
  chunk.from_originator = pdu.from_originator;
  chunk.data = pdu.payload;
  subscription_.deliver_stream(chunk);
  ++stats_.delivered_packets;
  if (inst_.callbacks != nullptr) inst_.callbacks->inc();
}

void Pipeline::stream_pdu(ConnEntry& entry, const stream::L4Pdu& pdu) {
  if (entry.filter_matched) {
    deliver_stream_chunk(entry, pdu);
    return;
  }
  // Filter unresolved: hold the in-order PDU by reference (Fig. 4a's
  // buffering, applied to stream chunks) — unless shedding says the
  // buffer may not grow.
  if (!buffering_allowed()) {
    shed(overload::ShedStage::kBuffering);
    return;
  }
  if (entry.pdu_buffer.size() >= config_.conn_packet_buffer) {
    heap_bytes_ -= static_cast<std::int64_t>(
        entry.pdu_buffer.front().payload.size());
    entry.pdu_buffer_bytes -= entry.pdu_buffer.front().payload.size();
    entry.pdu_buffer.erase(entry.pdu_buffer.begin());
  }
  heap_bytes_ += static_cast<std::int64_t>(pdu.payload.size());
  entry.pdu_buffer_bytes += pdu.payload.size();
  entry.pdu_buffer.push_back(pdu);
}

void Pipeline::flush_pdu_buffer(ConnEntry& entry) {
  for (const auto& pdu : entry.pdu_buffer) {
    deliver_stream_chunk(entry, pdu);
  }
  heap_bytes_ -= static_cast<std::int64_t>(entry.pdu_buffer_bytes);
  entry.pdu_buffer_bytes = 0;
  entry.pdu_buffer.clear();
  entry.pdu_buffer.shrink_to_fit();
}

void Pipeline::flush_on_match(ConnEntry& entry) {
  if (subscription_.level() == Level::kPacket) {
    flush_buffered(entry);
  } else if (subscription_.level() == Level::kStream) {
    flush_pdu_buffer(entry);
  }
}

void Pipeline::handle_pdu(ConnId id, ConnEntry& entry, stream::L4Pdu pdu) {
  if (entry.dropped) return;
  if (entry.state != ConnState::kProbe && entry.state != ConnState::kParse) {
    return;
  }
  // Session shedding: either the ladder reached kShedSessions after
  // this connection started probing, or the parse-cycle token bucket
  // (refilled by virtual time) ran dry. Both settle the connection
  // without further probe/parse work.
  if (degraded_to(overload::DegradeLevel::kShedSessions)) {
    shed(overload::ShedStage::kSession);
    settle_without_parsing(id, entry);
    return;
  }
  if (!parse_budget_ok(pdu.ts_ns)) {
    shed(overload::ShedStage::kParseBudget);
    settle_without_parsing(id, entry);
    return;
  }
  const bool metered = config_.overload.enabled &&
                       config_.overload.parse_cycles_per_sec != 0;
  const std::uint64_t t0 = metered ? util::rdtsc() : 0;
  if (entry.state == ConnState::kProbe) {
    probe_pdu(id, entry, pdu);
  } else {
    parse_pdu(id, entry, pdu);
  }
  if (metered) {
    parse_tokens_ -= static_cast<std::int64_t>(util::rdtsc() - t0);
  }
}

void Pipeline::probe_pdu(ConnId id, ConnEntry& entry,
                         const stream::L4Pdu& pdu) {
  ++entry.probe_attempts;

  // The PDU the candidates vote on: UDP datagrams are self-contained,
  // but TCP signatures may span segments, so TCP probing runs over the
  // accumulated per-direction prefix and keeps the consumed PDUs for
  // replay into the parser.
  stream::L4Pdu probe_view = pdu;
  constexpr std::size_t kPrefixCap = 256;
  if (entry.is_tcp) {
    auto& prefix = entry.probe_prefix[pdu.from_originator ? 0 : 1];
    const std::size_t take =
        std::min(pdu.payload.size(),
                 kPrefixCap > prefix.size() ? kPrefixCap - prefix.size() : 0);
    prefix.insert(prefix.end(), pdu.payload.begin(),
                  pdu.payload.begin() + static_cast<std::ptrdiff_t>(take));
    heap_bytes_ += static_cast<std::int64_t>(pdu.payload.size());
    entry.probe_pdus.push_back(pdu);
    probe_view.payload = {prefix.data(), prefix.size()};
  }

  std::size_t identified = candidates_.size();
  {
    StageScope scope(stats_, Stage::kParsing, config_.instrument_stages, &inst_);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const auto bit = 1u << i;
      if (!(entry.probe_alive & bit)) continue;
      switch (candidates_[i].prototype->probe(probe_view)) {
        case protocols::ProbeResult::kYes:
          identified = i;
          break;
        case protocols::ProbeResult::kNo:
          entry.probe_alive &= ~bit;
          break;
        case protocols::ProbeResult::kUnsure:
          break;
      }
      if (identified != candidates_.size()) break;
    }
  }

  if (identified != candidates_.size()) {
    const auto& candidate = candidates_[identified];
    entry.app_proto = candidate.app_proto_id;
    entry.record.app_proto = candidate.name;
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kConnProbed,
                     entry.record.tuple.hash(), pdu.ts_ns, 0,
                     candidate.name.c_str());
    }
    entry.parser = parser_registry_.create(candidate.name);
    heap_bytes_ += kParserEstimateBytes;
    entry.state = ConnState::kParse;
    run_conn_filter(id, entry);
    if (!entry.dropped && entry.state == ConnState::kParse && entry.parser) {
      if (entry.is_tcp) {
        // Replay everything consumed while probing, in arrival order.
        auto held = std::move(entry.probe_pdus);
        clear_probe_state(entry);
        for (auto& replay : held) {
          if (entry.dropped || entry.state != ConnState::kParse) break;
          parse_pdu(id, entry, replay);
        }
      } else {
        parse_pdu(id, entry, pdu);
      }
    } else {
      clear_probe_state(entry);
    }
    return;
  }

  if (entry.probe_alive == 0 ||
      entry.probe_attempts >= config_.max_probe_pdus) {
    // Protocol unknown: resolve the filter with app_proto = 0.
    ++stats_.probe_failures;
    entry.app_proto = 0;
    clear_probe_state(entry);
    run_conn_filter(id, entry);
    if (!entry.dropped && entry.state == ConnState::kProbe) {
      // Filter satisfied without a parser (or packet-terminal match):
      // nothing to parse, so settle the connection.
      if (subscription_.level() == Level::kSession) {
        to_dropped(entry);  // no parser => no sessions, ever
      } else {
        flush_on_match(entry);
        to_track(entry);
      }
    }
  }
}

void Pipeline::clear_probe_state(ConnEntry& entry) {
  for (const auto& held : entry.probe_pdus) {
    heap_bytes_ -= static_cast<std::int64_t>(held.payload.size());
  }
  entry.probe_pdus.clear();
  entry.probe_pdus.shrink_to_fit();
  for (auto& prefix : entry.probe_prefix) {
    prefix.clear();
    prefix.shrink_to_fit();
  }
}

void Pipeline::run_conn_filter(ConnId id, ConnEntry& entry) {
  (void)id;
  if (entry.filter_matched) {
    // Already fully matched at the packet layer; the connection filter
    // has nothing to decide. Session-level subscriptions keep parsing
    // (session filter auto-matches); others were settled at creation.
    if (subscription_.level() == Level::kSession && !entry.parser) {
      to_dropped(entry);
    }
    return;
  }

  const auto result = filter_.conn_filter(entry.resume_node, entry.app_proto);
  entry.conn_filter_ran = true;
  switch (result.kind) {
    case MatchKind::kNoMatch:
      // No pattern can match this connection anymore: discard all its
      // state (and any held packets) immediately.
      to_dropped(entry);
      return;
    case MatchKind::kTerminal:
      entry.filter_matched = true;
      entry.early_matched = true;
      entry.resume_node = result.node_id;
      switch (subscription_.level()) {
        case Level::kPacket:
        case Level::kStream:
          flush_on_match(entry);
          to_track(entry);  // future data delivered straight through
          break;
        case Level::kConnection:
          to_track(entry);  // record accumulates; parsing stops
          break;
        case Level::kSession:
          if (!entry.parser) to_dropped(entry);
          break;  // stay in Parse to collect sessions
      }
      return;
    case MatchKind::kNonTerminal:
      // Session predicates pending: must parse to decide.
      entry.resume_node = result.node_id;
      if (!entry.parser) {
        to_dropped(entry);  // cannot parse => can never match
      }
      return;
  }
}

void Pipeline::parse_pdu(ConnId id, ConnEntry& entry,
                         const stream::L4Pdu& pdu) {
  protocols::ParseResult result;
  {
    StageScope scope(stats_, Stage::kParsing, config_.instrument_stages, &inst_);
    result = entry.parser->parse(pdu);
  }

  auto sessions = entry.parser->take_sessions();
  if (!sessions.empty()) {
    handle_sessions(id, entry, std::move(sessions));
  }
  if (entry.dropped || entry.state != ConnState::kParse) return;

  if (result == protocols::ParseResult::kDone ||
      result == protocols::ParseResult::kError) {
    // The parser will produce no further sessions.
    if (subscription_.level() == Level::kSession) {
      to_dropped(entry, /*count_filter_drop=*/!entry.filter_matched);
    } else if (entry.filter_matched) {
      flush_on_match(entry);
      to_track(entry);
    } else {
      to_dropped(entry);
    }
  }
}

void Pipeline::handle_sessions(ConnId id, ConnEntry& entry,
                               std::vector<protocols::Session> sessions) {
  for (auto& session : sessions) {
    ++stats_.sessions_parsed;
    if (inst_.sessions != nullptr) inst_.sessions->inc();
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kSessionParsed,
                     entry.record.tuple.hash(), entry.record.last_ts_ns, 0,
                     entry.record.app_proto.c_str());
    }

    bool matched;
    {
      StageScope scope(stats_, Stage::kSessionFilter,
                       config_.instrument_stages, &inst_);
      // A packet/connection-layer terminal match covers every session;
      // a previous session-layer match does not — each session is
      // evaluated on its own.
      matched = entry.early_matched ||
                filter_.session_filter(entry.resume_node, session);
    }

    const auto hint = matched ? entry.parser->session_match_state()
                              : entry.parser->session_nomatch_state();

    if (matched) {
      entry.filter_matched = true;
      if (subscription_.level() == Level::kSession) {
        StageScope scope(stats_, Stage::kCallback, config_.instrument_stages, &inst_);
        SessionRecord record;
        record.tuple = entry.record.tuple;
        record.ts_ns = entry.record.last_ts_ns;
        record.session = std::move(session);
        subscription_.deliver_session(record);
        ++stats_.delivered_sessions;
        if (inst_.callbacks != nullptr) inst_.callbacks->inc();
        if (spans_ != nullptr) {
          spans_->record(telemetry::SpanEvent::kDelivered,
                         entry.record.tuple.hash(),
                         entry.record.last_ts_ns);
        }
      } else {
        flush_on_match(entry);  // buffered packets / stream chunks
      }
    }

    apply_post_session_state(id, entry, hint, matched);
    if (entry.dropped || entry.state != ConnState::kParse) break;
  }
}

void Pipeline::apply_post_session_state(ConnId id, ConnEntry& entry,
                                        conntrack::ConnState hint,
                                        bool matched) {
  (void)id;
  if (subscription_.level() == Level::kSession) {
    // The parser knows whether more sessions can follow (TLS: no;
    // HTTP/DNS: yes).
    switch (hint) {
      case ConnState::kDelete:
        to_dropped(entry, /*count_filter_drop=*/!matched);
        break;
      case ConnState::kTrack:
        to_track(entry);
        break;
      case ConnState::kParse:
      case ConnState::kProbe:
        break;  // keep parsing
    }
    return;
  }

  // Packet- and connection-level subscriptions: a match means the filter
  // is settled — stop parsing and just deliver/accumulate. A miss
  // defers to the parser: TLS misses are final (Delete), HTTP may match
  // a later transaction (keep parsing).
  if (matched) {
    to_track(entry);
    return;
  }
  if (hint == ConnState::kDelete) {
    to_dropped(entry);
  }
}

void Pipeline::to_track(ConnEntry& entry) {
  entry.state = ConnState::kTrack;
  clear_probe_state(entry);
  // Parsing stops: release the parser (paper: "stop reordering flows
  // after identifying the protocol"). Reassembly state is also released
  // unless reconstructed byte-streams ARE the subscription data.
  if (entry.parser) {
    entry.parser.reset();
    heap_bytes_ -= kParserEstimateBytes;
  }
  if (subscription_.level() != Level::kStream) {
    for (auto* reasm : {&entry.reasm_up, &entry.reasm_down}) {
      if (*reasm) {
        heap_bytes_ -= (*reasm)->pending() * kOooPduEstimateBytes;
        heap_bytes_ -= kReassemblerBytes;
        reasm_hold_bytes_ -= static_cast<std::int64_t>(
            (*reasm)->pending() * kOooPduEstimateBytes);
        reasm->reset();
      }
    }
  }
}

void Pipeline::to_dropped(ConnEntry& entry, bool count_filter_drop) {
  if (entry.dropped) return;
  entry.dropped = true;
  if (count_filter_drop) {
    ++stats_.conns_dropped_filter;
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kFilterDropped,
                     entry.record.tuple.hash(), entry.record.last_ts_ns);
    }
  }
  clear_probe_state(entry);
  if (entry.parser) {
    entry.parser.reset();
    heap_bytes_ -= kParserEstimateBytes;
  }
  for (auto* reasm : {&entry.reasm_up, &entry.reasm_down}) {
    if (*reasm) {
      heap_bytes_ -= (*reasm)->pending() * kOooPduEstimateBytes;
      heap_bytes_ -= kReassemblerBytes;
      reasm->reset();
    }
  }
  heap_bytes_ -= entry.buffered_bytes;
  entry.buffered_bytes = 0;
  entry.buffered.clear();
  entry.buffered.shrink_to_fit();
  heap_bytes_ -= static_cast<std::int64_t>(entry.pdu_buffer_bytes);
  entry.pdu_buffer_bytes = 0;
  entry.pdu_buffer.clear();
  entry.pdu_buffer.shrink_to_fit();
}

void Pipeline::flush_buffered(ConnEntry& entry) {
  if (entry.buffered.empty()) return;
  StageScope scope(stats_, Stage::kCallback, config_.instrument_stages, &inst_);
  for (const auto& mbuf : entry.buffered) {
    subscription_.deliver_packet(mbuf);
    ++stats_.delivered_packets;
    if (inst_.callbacks != nullptr) inst_.callbacks->inc();
  }
  heap_bytes_ -= entry.buffered_bytes;
  entry.buffered_bytes = 0;
  entry.buffered.clear();
  entry.buffered.shrink_to_fit();
}

void Pipeline::terminate_conn(ConnId id, ConnEntry& entry,
                              TerminateReason reason,
                              bool remove_from_table) {
  // Flush any partially parsed session (e.g. a ClientHello whose
  // handshake never completed) through the session filter.
  if (!entry.dropped && entry.parser &&
      (entry.state == ConnState::kProbe ||
       entry.state == ConnState::kParse)) {
    auto sessions = entry.parser->drain_sessions();
    if (!sessions.empty()) {
      handle_sessions(id, entry, std::move(sessions));
    }
  }

  // Analytics sink: one FlowRecord per matched connection, whatever the
  // subscription level — the archive is a connection-granularity store.
  if (sink_ != nullptr && !entry.dropped && entry.filter_matched) {
    sink_->append(sink_core_, sink::FlowRecord::from(entry.record));
  }

  if (subscription_.level() == Level::kConnection && !entry.dropped &&
      entry.filter_matched) {
    StageScope scope(stats_, Stage::kCallback, config_.instrument_stages, &inst_);
    subscription_.deliver_connection(entry.record);
    ++stats_.delivered_conns;
    if (inst_.callbacks != nullptr) inst_.callbacks->inc();
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kDelivered,
                     entry.record.tuple.hash(), entry.record.last_ts_ns);
    }
  }
  if (subscription_.level() == Level::kStream && !entry.dropped &&
      entry.filter_matched) {
    StageScope scope(stats_, Stage::kCallback, config_.instrument_stages, &inst_);
    StreamChunk chunk;
    chunk.tuple = entry.record.tuple;
    chunk.ts_ns = entry.record.last_ts_ns;
    chunk.end_of_stream = true;
    subscription_.deliver_stream(chunk);
    if (inst_.callbacks != nullptr) inst_.callbacks->inc();
  }

  if (spans_ != nullptr) {
    // One complete event spanning the connection's whole life, plus the
    // terminating instant (expiry records its own event beforehand).
    const auto conn_id = entry.record.tuple.hash();
    const auto first = entry.record.first_ts_ns;
    const auto last = entry.record.last_ts_ns;
    spans_->record(telemetry::SpanEvent::kConnSpan, conn_id, first,
                   last > first ? last - first : 0,
                   entry.record.app_proto.c_str());
    if (reason != TerminateReason::kExpired) {
      spans_->record(telemetry::SpanEvent::kTerminated, conn_id, last);
    }
  }

  // Release all per-connection heap state.
  to_dropped(entry, /*count_filter_drop=*/false);
  if (remove_from_table) {
    table_.remove(id);
  }
}

void Pipeline::finish() {
  std::vector<ConnId> live;
  table_.for_each([&](ConnId id, ConnEntry&) { live.push_back(id); });
  for (const auto id : live) {
    terminate_conn(id, table_.get(id), TerminateReason::kShutdown,
                   /*remove_from_table=*/true);
  }
}

// Migrated's special members live here, where ConnEntry is complete
// (the unique_ptr<ConnEntry> member cannot be destroyed from contexts
// that only see the forward declaration).
Pipeline::Migrated::Migrated() = default;
Pipeline::Migrated::Migrated(Migrated&&) noexcept = default;
Pipeline::Migrated& Pipeline::Migrated::operator=(Migrated&&) noexcept =
    default;
Pipeline::Migrated::~Migrated() = default;

std::int64_t Pipeline::entry_reasm_bytes(const ConnEntry& entry) const {
  std::int64_t bytes = 0;
  for (const auto* reasm : {&entry.reasm_up, &entry.reasm_down}) {
    if (*reasm) {
      bytes += static_cast<std::int64_t>((*reasm)->pending() *
                                         kOooPduEstimateBytes);
    }
  }
  return bytes;
}

std::int64_t Pipeline::entry_heap_bytes(const ConnEntry& entry) const {
  std::int64_t bytes = static_cast<std::int64_t>(entry.buffered_bytes) +
                       static_cast<std::int64_t>(entry.pdu_buffer_bytes);
  for (const auto& held : entry.probe_pdus) {
    bytes += static_cast<std::int64_t>(held.payload.size());
  }
  if (entry.parser) bytes += static_cast<std::int64_t>(kParserEstimateBytes);
  for (const auto* reasm : {&entry.reasm_up, &entry.reasm_down}) {
    if (*reasm) bytes += static_cast<std::int64_t>(kReassemblerBytes);
  }
  bytes += entry_reasm_bytes(entry);
  return bytes;
}

std::vector<Pipeline::Migrated> Pipeline::extract_bucket(
    std::uint32_t bucket, std::size_t reta_size) {
  std::vector<ConnId> ids;
  table_.for_each([&](ConnId id, ConnEntry& entry) {
    if (reta_size != 0 && entry.rss_hash % reta_size == bucket) {
      ids.push_back(id);
    }
  });
  std::vector<Migrated> out;
  out.reserve(ids.size());
  for (const auto id : ids) {
    Migrated migrated;
    migrated.key = table_.key_of(id);
    const ConnEntry& entry = table_.get(id);
    migrated.rss_hash = entry.rss_hash;
    migrated.heap_bytes = entry_heap_bytes(entry);
    migrated.reasm_bytes = entry_reasm_bytes(entry);
    auto extracted = table_.extract(id);
    migrated.established = extracted.established;
    migrated.deadline_ns = extracted.deadline_ns;
    migrated.entry = std::make_unique<ConnEntry>(std::move(extracted.conn));
    heap_bytes_ -= migrated.heap_bytes;
    reasm_hold_bytes_ -= migrated.reasm_bytes;
    ++stats_.migrations_out;
    out.push_back(std::move(migrated));
  }
  // Incomplete fragment datagrams follow the same bucket: the NIC
  // steers fragments by their pseudo-tuple hash, so after the RETA
  // rewrite the remaining fragments arrive on the new owner — which
  // needs the chunks collected so far, or mid-datagram rebalances
  // would lose packets a stable run keeps.
  for (auto& orphan : frag_.extract_bucket(bucket, reta_size)) {
    Migrated migrated;
    migrated.rss_hash = orphan.datagram.rss_hash;
    migrated.frag =
        std::make_unique<stream::FragTable::Orphan>(std::move(orphan));
    ++stats_.migrations_out;
    out.push_back(std::move(migrated));
  }
  if (!out.empty() && inst_.live_conns != nullptr) {
    inst_.live_conns->set(table_.size());
    inst_.state_bytes->set(approx_state_bytes());
  }
  return out;
}

void Pipeline::adopt(Migrated&& migrated) {
  if (migrated.frag != nullptr) {
    frag_.adopt(std::move(*migrated.frag));
    ++stats_.migrations_in;
    if (inst_.migrations != nullptr) inst_.migrations->inc();
    if (inst_.frag_held_bytes != nullptr) {
      inst_.frag_held_bytes->set(frag_.held_bytes());
    }
    return;
  }
  if (migrated.entry == nullptr) return;
  if (table_.find(migrated.key) != Table::kInvalid) {
    // Unreachable under the migration protocol (a bucket has exactly
    // one owner at any time); drop the duplicate rather than corrupt
    // the table.
    return;
  }
  heap_bytes_ += migrated.heap_bytes;
  reasm_hold_bytes_ += migrated.reasm_bytes;
  table_.adopt(migrated.key, std::move(*migrated.entry),
               migrated.established, migrated.deadline_ns);
  ++stats_.migrations_in;
  if (inst_.migrations != nullptr) inst_.migrations->inc();
  if (inst_.live_conns != nullptr) {
    inst_.live_conns->set(table_.size());
    inst_.state_bytes->set(approx_state_bytes());
  }
}

}  // namespace retina::core

// Per-core processing pipeline (paper §5, right half of Fig. 2). One
// Pipeline instance runs on each worker core, consuming the packets its
// NIC receive queue delivers. The pipeline is "subscription-aware": at
// every stage it consults the decomposed filter and the subscription's
// data level to decide whether a packet/connection deserves more work —
// eagerly discarding out-of-scope traffic and lazily reconstructing the
// rest:
//
//   packet filter → (callback | connection tracking) → reassembly →
//   probe → connection filter → parse → session filter → callback
//
// Connections move through the Probe/Parse/Track/Delete states of
// Fig. 4; the transitions are derived from (filter terminality ×
// subscription level × parser hints) exactly as §5.2 describes.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "conntrack/conn_state.hpp"
#include "conntrack/conn_table.hpp"
#include "core/config.hpp"
#include "core/filter_engine.hpp"
#include "core/offload_client.hpp"
#include "core/stats.hpp"
#include "core/subscription.hpp"
#include "packet/packet_view.hpp"
#include "packet/soa.hpp"
#include "protocols/registry.hpp"
#include "stream/frag.hpp"
#include "stream/reassembly.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace retina::sink {
class FlowSink;
}  // namespace retina::sink

namespace retina::core {

/// Raw hot-path handles into a shared telemetry::MetricRegistry. All
/// null by default: with telemetry off the pipeline pays one
/// well-predicted null check per hook. Each pointer targets this
/// core's single-writer slot.
struct PipelineInstruments {
  util::RelaxedCell* packets = nullptr;
  util::RelaxedCell* bytes = nullptr;
  util::RelaxedCell* conns_created = nullptr;
  util::RelaxedCell* conns_expired = nullptr;
  util::RelaxedCell* conns_terminated = nullptr;
  util::RelaxedCell* sessions = nullptr;
  util::RelaxedCell* callbacks = nullptr;
  util::RelaxedCell* live_conns = nullptr;   // gauge
  util::RelaxedCell* state_bytes = nullptr;  // gauge
  util::RelaxedCell* stage_invocations[static_cast<int>(Stage::kCount)] = {};
  telemetry::Histogram* stage_cycles[static_cast<int>(Stage::kCount)] = {};
  // Overload shedding, one counter per refusing stage.
  util::RelaxedCell*
      shed_cells[static_cast<int>(overload::ShedStage::kCount)] = {};
  // Burst-path instruments: packets per received burst, and CPU cycles
  // a whole burst took end to end.
  telemetry::Histogram* burst_occupancy = nullptr;
  telemetry::Histogram* burst_cycles = nullptr;
  // Connections adopted after an RSS rebalance moved their bucket here.
  util::RelaxedCell* migrations = nullptr;
  // IPv4 fragment reassembly (retina_frag_*).
  util::RelaxedCell* frag_fragments = nullptr;
  util::RelaxedCell* frag_reassembled = nullptr;
  util::RelaxedCell* frag_dropped = nullptr;
  util::RelaxedCell* frag_held_bytes = nullptr;  // gauge
  // Frames whose innermost ethertype the parser does not understand.
  util::RelaxedCell* unknown_ethertype = nullptr;
};

/// Why a connection is being terminated (delivery still depends on the
/// filter state).
enum class TerminateReason { kNatural, kExpired, kShutdown };

class Pipeline : public OffloadClient {
  struct ConnEntry;  // defined in the private section below

 public:
  Pipeline(const RuntimeConfig& config, const Subscription& subscription,
           const FilterEngine& filter,
           const filter::FieldRegistry& field_registry,
           const protocols::ParserRegistry& parser_registry);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Largest burst process_burst() sweeps in one two-pass pass; equals
  /// the NIC's rx_burst cap.
  static constexpr std::size_t kMaxBurst = 32;

  /// Process one packet from this core's receive queue.
  void process(packet::Mbuf mbuf);

  /// Process a burst polled from this core's receive queue. Two-pass:
  /// pass 1 parses headers, computes canonical tuples, and issues
  /// software prefetches for the connection-table probe lines and
  /// slots; pass 2 runs the filter and stateful stages with warm
  /// caches. Produces byte-identical stats and callback sequences to
  /// calling process() on each packet in order.
  void process_burst(std::span<packet::Mbuf> burst);

  /// Warm the leading frames of an *upcoming* burst (double-buffered
  /// receive): the drain loop polls burst N+1 before processing burst
  /// N and calls this, so by the time process_burst() reaches the new
  /// burst its first headers have had a whole burst's worth of work to
  /// arrive from memory — lead time the in-burst prefetch schedule
  /// cannot create for its own opening packets. Side-effect free.
  static void prefetch_frames(std::span<const packet::Mbuf> burst) noexcept;

  /// Terminate and deliver everything still tracked (end of run).
  void finish();

  /// Wire this pipeline's hot-path instruments into a shared registry
  /// (and optionally a span ring for lifecycle tracing). Call during
  /// single-threaded setup, before any packet is processed.
  void attach_telemetry(telemetry::MetricRegistry& registry,
                        std::size_t core,
                        telemetry::SpanRing* spans = nullptr);

  /// Wire the shared degradation-ladder state in (nullptr = always
  /// kNormal). Budgets come from the RuntimeConfig; the ladder level is
  /// read per packet through this pointer so the controller's writes
  /// take effect without any per-pipeline plumbing. Call during
  /// single-threaded setup.
  void attach_overload(overload::OverloadState* state) noexcept {
    overload_ = state;
  }

  /// Wire the dynamic flow offload engine in (nullptr = offload off).
  /// `core` is this pipeline's queue index — the mailbox the engine
  /// expects install requests on. Call during single-threaded setup.
  void attach_offload(OffloadRequester* requester, std::size_t core) noexcept {
    offload_requester_ = requester;
    offload_core_ = core;
  }

  /// Wire the analytics sink in (nullptr = no archiving). `core` is
  /// this pipeline's queue index — the sink's per-core arena lane the
  /// single-producer contract binds this pipeline to. Call during
  /// single-threaded setup.
  void attach_sink(sink::FlowSink* sink, std::size_t core) noexcept {
    sink_ = sink;
    sink_core_ = core;
  }

  // OffloadClient: called by the engine on this pipeline's worker core.
  bool offload_park(const packet::FiveTuple& key,
                    nic::OffloadSeed& seed_out) override;
  bool offload_merge(const nic::OffloadEvictRecord& rec) override;
  void offload_clear_pending(const packet::FiveTuple& key) override;

  const PipelineStats& stats() const noexcept { return stats_; }
  std::size_t live_connections() const noexcept { return table_.size(); }
  /// Approximate bytes of connection state held right now (Fig. 8).
  std::uint64_t approx_state_bytes() const;

  /// One connection lifted out of this pipeline for migration to a
  /// sibling core after an RSS rebalance. Carries the full per-
  /// connection state (record, reassembly buffers, parser, probe
  /// prefixes) opaquely, plus the timer metadata and the heap-byte
  /// contributions so the destination's Fig. 8 accounting stays exact.
  struct Migrated {
    Migrated();
    Migrated(Migrated&&) noexcept;
    Migrated& operator=(Migrated&&) noexcept;
    ~Migrated();

    packet::FiveTuple key{};
    std::uint64_t deadline_ns = 0;
    bool established = false;
    std::uint32_t rss_hash = 0;
    std::int64_t heap_bytes = 0;   // entry's contribution to heap_bytes_
    std::int64_t reasm_bytes = 0;  // ... and to reasm_hold_bytes_
    std::unique_ptr<ConnEntry> entry;  // opaque outside the pipeline
    /// Set instead of `entry` when this migration carries an incomplete
    /// IPv4 fragment datagram (keyed by the same RETA bucket through
    /// its pseudo-tuple RSS hash) rather than a tracked connection.
    std::unique_ptr<stream::FragTable::Orphan> frag;
  };

  /// Extract every tracked connection whose RSS hash falls in RETA
  /// bucket `bucket` (of `reta_size` buckets). The entries leave this
  /// pipeline's table, stats gauges, and byte accounting; callbacks
  /// fire neither here nor on the destination — migration is invisible
  /// to the subscription.
  std::vector<Migrated> extract_bucket(std::uint32_t bucket,
                                       std::size_t reta_size);

  /// Adopt a connection extracted from another core's pipeline.
  void adopt(Migrated&& migrated);

 private:
  struct ConnEntry {
    conntrack::ConnState state = conntrack::ConnState::kProbe;
    bool from_first_is_orig = true;  // direction bit of the first packet
    bool is_tcp = false;
    bool dropped = false;          // tombstone: filter said no
    bool filter_matched = false;   // a terminal predicate matched
    // True when the match happened at the packet or connection layer:
    // every session of the connection is then in scope. A match that
    // came from the *session* filter applies to that session only —
    // later sessions are evaluated individually.
    bool early_matched = false;
    std::uint32_t resume_node = 0; // packet-filter, then conn-filter node
    bool conn_filter_ran = false;
    // RSS hash of the connection's canonical tuple, recorded so the
    // rebalancer can find every connection owned by a RETA bucket.
    std::uint32_t rss_hash = 0;

    std::size_t probe_attempts = 0;
    std::uint32_t probe_alive = ~0u;  // candidate bitmask
    std::size_t app_proto = 0;        // 0 = unknown
    // TCP probing state: protocol signatures may span segments (split
    // banners/hellos), so probing runs over the accumulated per-
    // direction prefix, and the PDUs consumed while probing are kept
    // for replay into the parser once the protocol is identified.
    std::array<std::vector<std::uint8_t>, 2> probe_prefix;
    std::vector<stream::L4Pdu> probe_pdus;
    std::unique_ptr<protocols::ConnParser> parser;

    std::unique_ptr<stream::StreamReassembler> reasm_up;
    std::unique_ptr<stream::StreamReassembler> reasm_down;

    ConnRecord record;
    // Wire-order tracking for the record's ooo/dup counters (cheap:
    // no buffering, works in every state including Track).
    std::uint32_t max_seq_end[2] = {0, 0};
    std::uint32_t last_seq[2] = {0, 0};
    bool seq_seen[2] = {false, false};
    std::vector<packet::Mbuf> buffered;  // packet-level subs, Fig. 4a
    std::uint64_t buffered_bytes = 0;
    // Stream-level subs: in-order PDUs held until the filter resolves.
    std::vector<stream::L4Pdu> pdu_buffer;
    std::uint64_t pdu_buffer_bytes = 0;
    bool fin_up = false;
    bool fin_down = false;
    // Dynamic flow offload lifecycle: pending = install requested but
    // the rule isn't active yet; active = packets are being counted in
    // hardware and the entry is parked. park_pkts snapshots the
    // record's packet total at park time — if it changed by merge time,
    // software processed packets meanwhile (eviction raced a punt or a
    // migration) and the rule's final seq state must not overwrite the
    // newer software state.
    bool offload_pending = false;
    bool offload_active = false;
    std::uint64_t offload_park_pkts = 0;
  };

  using Table = conntrack::ConnTable<ConnEntry>;
  using ConnId = Table::ConnId;

  struct ProtoCandidate {
    std::size_t app_proto_id;
    std::string name;
    bool over_tcp;
    std::unique_ptr<protocols::ConnParser> prototype;  // used for probing
  };

  void process_one(packet::Mbuf& mbuf,
                   const std::optional<packet::PacketView>& view,
                   const packet::FiveTuple::Canonical* canon,
                   std::uint64_t canon_hash,
                   const filter::FilterResult* pf_hint,
                   bool housekeeping = true);
  /// Fragment admission: shed-reassembly gate, then the frag table; a
  /// completed datagram re-enters through the normal parse.
  void handle_fragment(const packet::PacketView& view);
  void handle_stateful(packet::Mbuf& mbuf, const packet::PacketView& view,
                       const filter::FilterResult& pf_result,
                       const packet::FiveTuple::Canonical& canon,
                       std::uint64_t key_hash);
  ConnId create_conn(const packet::FiveTuple& canonical_key,
                     bool originator_is_first,
                     const filter::FilterResult& pf_result, bool is_tcp,
                     std::uint64_t ts_ns, std::uint32_t rss_hash);
  void update_record(ConnEntry& entry, const packet::PacketView& view,
                     bool from_orig, std::uint64_t ts_ns);
  void feed_pdus(ConnId id, ConnEntry& entry, packet::Mbuf& mbuf,
                 const packet::PacketView& view, bool from_orig);
  void handle_pdu(ConnId id, ConnEntry& entry, stream::L4Pdu pdu);
  void probe_pdu(ConnId id, ConnEntry& entry, const stream::L4Pdu& pdu);
  void run_conn_filter(ConnId id, ConnEntry& entry);
  void parse_pdu(ConnId id, ConnEntry& entry, const stream::L4Pdu& pdu);
  void handle_sessions(ConnId id, ConnEntry& entry,
                       std::vector<protocols::Session> sessions);
  void apply_post_session_state(ConnId id, ConnEntry& entry,
                                conntrack::ConnState hint, bool matched);

  void clear_probe_state(ConnEntry& entry);
  void stream_pdu(ConnEntry& entry, const stream::L4Pdu& pdu);
  void deliver_stream_chunk(const ConnEntry& entry,
                            const stream::L4Pdu& pdu);
  void flush_pdu_buffer(ConnEntry& entry);
  void flush_on_match(ConnEntry& entry);
  void to_track(ConnEntry& entry);
  void to_dropped(ConnEntry& entry, bool count_filter_drop = true);

  // --- Overload shedding (budgets + degradation ladder) ---
  overload::DegradeLevel degrade_level() const noexcept {
    return overload_ != nullptr ? overload_->level()
                                : overload::DegradeLevel::kNormal;
  }
  bool degraded_to(overload::DegradeLevel at_least) const noexcept {
    return static_cast<int>(degrade_level()) >= static_cast<int>(at_least);
  }
  void shed(overload::ShedStage stage);
  /// May a new connection enter the table? (ladder >= kCountOnly, the
  /// connection-count cap, and the projected state-byte cap all say no.)
  bool admit_connection() const;
  /// May packet/stream data be buffered while the filter is pending?
  bool buffering_allowed() const;
  /// Is TCP reassembly currently shed (ladder or reassembly-byte cap)?
  bool reassembly_shed() const;
  /// Session probe/parse token bucket, refilled by virtual time.
  bool parse_budget_ok(std::uint64_t ts_ns);
  /// Resolve a connection's fate *without* probing or parsing: the
  /// kShedSessions path. Session subs get a tombstone; others settle
  /// through the connection filter with app_proto = unknown.
  void settle_without_parsing(ConnId id, ConnEntry& entry);
  void flush_buffered(ConnEntry& entry);
  void terminate_conn(ConnId id, ConnEntry& entry, TerminateReason reason,
                      bool remove_from_table);
  /// End-of-packet hook: if the connection has settled (delivered or
  /// dropped, nothing left for software to do per-packet), ask the
  /// engine to offload it.
  void maybe_request_offload(ConnId id, ConnEntry& entry);
  void maybe_sample_memory(std::uint64_t ts_ns);
  // An entry's exact contribution to heap_bytes_ / reasm_hold_bytes_,
  // mirrored by extract_bucket()/adopt() so migration moves the
  // accounting along with the state.
  std::int64_t entry_heap_bytes(const ConnEntry& entry) const;
  std::int64_t entry_reasm_bytes(const ConnEntry& entry) const;

  const RuntimeConfig& config_;
  const Subscription& subscription_;
  const FilterEngine& filter_;
  const protocols::ParserRegistry& parser_registry_;

  std::vector<ProtoCandidate> candidates_;  // probe order
  std::uint32_t tcp_candidate_mask_ = 0;
  std::uint32_t udp_candidate_mask_ = 0;

  Table table_;
  stream::FragTable frag_;  // per-core IPv4 fragment reassembly
  PipelineStats stats_;
  PipelineInstruments inst_;
  // Reused per burst: the SoA parse + batch-filter scratch. ~8 KB, only
  // touched by this core's drain loop.
  packet::SoaBurstView soa_;
  telemetry::SpanRing* spans_ = nullptr;
  std::int64_t heap_bytes_ = 0;  // buffered packets + parser estimates
  std::uint64_t next_sample_ts_ = 0;
  std::uint64_t last_ts_ = 0;

  overload::OverloadState* overload_ = nullptr;  // borrowed; may be null
  sink::FlowSink* sink_ = nullptr;               // borrowed; may be null
  std::size_t sink_core_ = 0;
  OffloadRequester* offload_requester_ = nullptr;  // borrowed; may be null
  std::size_t offload_core_ = 0;
  std::int64_t reasm_hold_bytes_ = 0;  // out-of-order bytes held right now
  std::int64_t parse_tokens_ = 0;      // parse-cycle token bucket
  std::uint64_t parse_refill_ts_ = 0;
  bool parse_bucket_primed_ = false;
};

}  // namespace retina::core

#include "core/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace retina::core {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kHardwareFilter: return "hardware_filter";
    case Stage::kPacketFilter: return "sw_packet_filter";
    case Stage::kConnTracking: return "connection_tracking";
    case Stage::kReassembly: return "stream_reassembly";
    case Stage::kParsing: return "app_layer_parsing";
    case Stage::kSessionFilter: return "session_filter";
    case Stage::kCallback: return "run_callback";
    case Stage::kCount: break;
  }
  return "?";
}

void StageCounters::merge(const StageCounters& other) {
  for (int i = 0; i < static_cast<int>(Stage::kCount); ++i) {
    invocations[i] += other.invocations[i];
    cycles[i] += other.cycles[i];
  }
}

void PipelineStats::merge(const PipelineStats& other) {
  packets += other.packets;
  bytes += other.bytes;
  delivered_packets += other.delivered_packets;
  delivered_conns += other.delivered_conns;
  delivered_sessions += other.delivered_sessions;
  conns_created += other.conns_created;
  conns_dropped_filter += other.conns_dropped_filter;
  conns_expired += other.conns_expired;
  conns_terminated += other.conns_terminated;
  sessions_parsed += other.sessions_parsed;
  probe_failures += other.probe_failures;
  busy_cycles += other.busy_cycles;
  migrations_in += other.migrations_in;
  migrations_out += other.migrations_out;
  frag_fragments += other.frag_fragments;
  frag_reassembled += other.frag_reassembled;
  frag_duplicates += other.frag_duplicates;
  frag_dropped_budget += other.frag_dropped_budget;
  frag_dropped_timeout += other.frag_dropped_timeout;
  frag_dropped_malformed += other.frag_dropped_malformed;
  unknown_ethertype += other.unknown_ethertype;
  for (int i = 0; i < static_cast<int>(overload::ShedStage::kCount); ++i) {
    shed[i] += other.shed[i];
  }
  // Peaks are per core and concurrent, so the merged peak is the sum:
  // the budget is per core, and the worst case is every core at its
  // high-water mark at once.
  peak_state_bytes += other.peak_state_bytes;
  stages.merge(other.stages);
  // Each core's samples are time-ordered; a cross-core merge must
  // re-establish global time order or the merged Fig. 8 memory curve
  // interleaves out of sequence.
  const auto middle =
      static_cast<std::ptrdiff_t>(memory_samples.size());
  memory_samples.insert(memory_samples.end(), other.memory_samples.begin(),
                        other.memory_samples.end());
  std::inplace_merge(memory_samples.begin(), memory_samples.begin() + middle,
                     memory_samples.end(),
                     [](const MemorySample& a, const MemorySample& b) {
                       return a.ts_ns < b.ts_ns;
                     });
}

std::string RunStats::to_string() const {
  std::ostringstream os;
  os << "packets=" << total.packets << " bytes=" << total.bytes
     << " conns=" << total.conns_created
     << " sessions=" << total.sessions_parsed
     << " cb_pkt=" << total.delivered_packets
     << " cb_conn=" << total.delivered_conns
     << " cb_sess=" << total.delivered_sessions
     << " hw_drop=" << nic_hw_dropped << " sunk=" << nic_sunk
     << " loss=" << nic_ring_dropped;
  if (nic_offload_pkts > 0) {
    os << " offload_pkts=" << nic_offload_pkts
       << " offload_bytes=" << nic_offload_bytes;
  }
  if (sink_records > 0 || sink_dropped > 0) {
    os << " sink_records=" << sink_records << " sink_chunks=" << sink_chunks
       << " sink_bytes=" << sink_bytes;
    if (sink_dropped > 0) {
      os << " sink_dropped=" << sink_dropped
         << " sink_backpressure=" << sink_backpressure;
    }
  }
  if (total.frag_fragments > 0) {
    os << " frag=" << total.frag_fragments
       << " frag_reasm=" << total.frag_reassembled;
    const auto frag_dropped = total.frag_dropped_budget +
                              total.frag_dropped_timeout +
                              total.frag_dropped_malformed;
    if (frag_dropped > 0) os << " frag_dropped=" << frag_dropped;
  }
  if (total.unknown_ethertype > 0) {
    os << " unknown_ethertype=" << total.unknown_ethertype;
  }
  if (total.shed_total() > 0) {
    os << " shed=" << total.shed_total();
    for (int i = 0; i < static_cast<int>(overload::ShedStage::kCount); ++i) {
      if (total.shed[i] == 0) continue;
      os << " shed_"
         << overload::shed_stage_name(static_cast<overload::ShedStage>(i))
         << "=" << total.shed[i];
    }
  }
  const double loss_fraction =
      nic_rx_packets == 0 ? 0.0
                          : static_cast<double>(nic_ring_dropped) /
                                static_cast<double>(nic_rx_packets);
  os << std::fixed << std::setprecision(3) << " loss_frac="
     << std::setprecision(5) << loss_fraction << std::setprecision(3)
     << " gbps=" << processed_gbps() << " wall_s=" << wall_seconds
     << " core_s=" << max_core_seconds;
  if (!filter_backend.empty()) os << " filter_backend=" << filter_backend;
  return os.str();
}

}  // namespace retina::core

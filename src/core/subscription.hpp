// The subscription programming model (paper §3.2): users subscribe to
// traffic with a *filter* and a *callback*, choosing one of three data
// abstraction levels:
//   - raw packets (L2–3), delivered in the order received;
//   - reassembled connection records (L4);
//   - parsed application-layer sessions (L5–7).
// Filter and data type are independent: one can receive the raw packets
// of connections whose TLS SNI matches a regex, or connection records of
// HTTP flows, etc. Subscriptions are constructed exclusively through the
// fluent `Subscription::builder()`; its typed `on_*` setters mirror
// Retina's subscribable types (TlsHandshake, HttpTransaction, ...).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "packet/five_tuple.hpp"
#include "packet/mbuf.hpp"
#include "protocols/session.hpp"
#include "util/result.hpp"

namespace retina::filter {
class FieldRegistry;
}  // namespace retina::filter

namespace retina::core {

enum class Level { kPacket, kConnection, kSession, kStream };

/// A reassembled-connection record (the L4 data type). Accumulated for
/// every tracked connection and delivered when the connection ends
/// (FIN/RST, timeout, or end of trace).
struct ConnRecord {
  packet::FiveTuple tuple;       // originator first
  std::uint64_t first_ts_ns = 0;
  std::uint64_t last_ts_ns = 0;

  std::uint64_t pkts_up = 0;     // originator -> responder
  std::uint64_t pkts_down = 0;
  std::uint64_t bytes_up = 0;    // wire bytes
  std::uint64_t bytes_down = 0;
  std::uint64_t payload_up = 0;  // L4 payload bytes
  std::uint64_t payload_down = 0;

  std::uint32_t ooo_up = 0;      // out-of-order segments observed
  std::uint32_t ooo_down = 0;
  std::uint32_t dup_up = 0;      // retransmitted/duplicate segments
  std::uint32_t dup_down = 0;

  bool saw_syn = false;
  bool saw_synack = false;
  bool saw_fin = false;
  bool saw_rst = false;
  bool established = false;      // traffic in both directions

  std::string app_proto;         // identified protocol ("" if unknown)

  std::uint64_t duration_ns() const noexcept {
    return last_ts_ns - first_ts_ns;
  }
  std::uint64_t total_bytes() const noexcept { return bytes_up + bytes_down; }
  /// Single unanswered SYN (the 65% case on the paper's network).
  bool single_syn() const noexcept {
    return saw_syn && !established && pkts_down == 0;
  }
};

/// A parsed session plus its connection context (the L5–7 data type).
struct SessionRecord {
  packet::FiveTuple tuple;
  std::uint64_t ts_ns = 0;
  protocols::Session session;
};

/// One in-order segment of a reconstructed byte-stream (the
/// "fully reconstructed byte-stream" subscribable type of §3.3).
/// Chunks of one direction arrive in sequence order with no gaps or
/// duplicates; `end_of_stream` marks connection termination.
struct StreamChunk {
  packet::FiveTuple tuple;  // originator first
  std::uint64_t ts_ns = 0;
  bool from_originator = true;
  bool end_of_stream = false;
  std::span<const std::uint8_t> data{};
};

using PacketCallback = std::function<void(const packet::Mbuf&)>;
using ConnCallback = std::function<void(const ConnRecord&)>;
using SessionCallback = std::function<void(const SessionRecord&)>;
using StreamCallback = std::function<void(const StreamChunk&)>;

class Subscription {
 public:
  class Builder;

  /// Entry point of the fluent API:
  ///
  ///   auto sub = Subscription::builder()
  ///                  .filter("tls.sni ~ 'netflix'")
  ///                  .on_session([](const SessionRecord& rec) { ... })
  ///                  .build();
  ///   if (!sub) { /* sub.error() explains the bad filter */ }
  ///
  /// The data-abstraction level is inferred from the callback
  /// (`on_packet` -> kPacket, ... ); an explicit `.level(...)` is
  /// checked against it. `build()` validates the filter by compiling it
  /// (parse + decomposition), so a typo'd filter is an error value at
  /// subscription-construction time, not a throw at Runtime startup.
  static Builder builder();

  /// Require additional protocol parsers beyond those the filter names
  /// (post-construction variant of Builder::parsers).
  Subscription&& with_parsers(std::vector<std::string> parsers) &&;

  Level level() const noexcept { return level_; }
  const std::string& filter() const noexcept { return filter_; }
  const std::vector<std::string>& extra_parsers() const noexcept {
    return extra_parsers_;
  }

  void deliver_packet(const packet::Mbuf& mbuf) const;
  void deliver_connection(const ConnRecord& record) const;
  void deliver_session(const SessionRecord& record) const;
  void deliver_stream(const StreamChunk& chunk) const;

 private:
  friend class Builder;

  Subscription() = default;

  // Builder internals.
  static Subscription make(Level level, std::string filter);
  static SessionCallback wrap_tls(
      std::function<void(const SessionRecord&,
                         const protocols::TlsHandshake&)> callback);
  static SessionCallback wrap_http(
      std::function<void(const SessionRecord&,
                         const protocols::HttpTransaction&)> callback);

  Level level_ = Level::kPacket;
  std::string filter_;
  std::vector<std::string> extra_parsers_;
  PacketCallback on_packet_;
  ConnCallback on_connection_;
  SessionCallback on_session_;
  StreamCallback on_stream_;
};

/// Fluent, validating constructor for Subscription. Each `on_*` call
/// selects the abstraction level and installs the callback; setting a
/// second callback is a build()-time error, as is an explicit level()
/// that contradicts the callback, or a filter that fails to compile.
class Subscription::Builder {
 public:
  /// Filter expression (default: "", subscribe to all traffic).
  Builder& filter(std::string expression) &;
  Builder&& filter(std::string expression) &&;

  /// Explicit data-abstraction level. Optional — the `on_*` callback
  /// already implies it; when both are given they must agree.
  Builder& level(Level level) &;
  Builder&& level(Level level) &&;

  Builder& on_packet(PacketCallback callback) &;
  Builder&& on_packet(PacketCallback callback) &&;
  Builder& on_connection(ConnCallback callback) &;
  Builder&& on_connection(ConnCallback callback) &&;
  Builder& on_session(SessionCallback callback) &;
  Builder&& on_session(SessionCallback callback) &&;
  Builder& on_stream(StreamCallback callback) &;
  Builder&& on_stream(StreamCallback callback) &&;

  /// Typed conveniences (Retina's subscribable types): session-level
  /// callbacks invoked only for the matching session type, with the
  /// needed parser required automatically.
  Builder& on_tls_handshake(
      std::function<void(const SessionRecord&,
                         const protocols::TlsHandshake&)> callback) &;
  Builder&& on_tls_handshake(
      std::function<void(const SessionRecord&,
                         const protocols::TlsHandshake&)> callback) &&;
  Builder& on_http_transaction(
      std::function<void(const SessionRecord&,
                         const protocols::HttpTransaction&)> callback) &;
  Builder&& on_http_transaction(
      std::function<void(const SessionRecord&,
                         const protocols::HttpTransaction&)> callback) &&;

  /// Require protocol parsers beyond those the filter names.
  Builder& parsers(std::vector<std::string> parsers) &;
  Builder&& parsers(std::vector<std::string> parsers) &&;

  /// Validate and construct. Checks that exactly one callback is set,
  /// that any explicit level matches it, and that the filter parses and
  /// decomposes against `fields` (the builtin registry by default).
  Result<Subscription> build() const;
  Result<Subscription> build(const filter::FieldRegistry& fields) const;

 private:
  Builder& set_callback(Level level, PacketCallback packet_cb,
                        ConnCallback conn_cb, SessionCallback session_cb,
                        StreamCallback stream_cb);

  std::string filter_;
  bool has_level_ = false;
  Level level_ = Level::kPacket;
  int callbacks_set_ = 0;
  Level callback_level_ = Level::kPacket;
  std::vector<std::string> required_parsers_;
  PacketCallback on_packet_;
  ConnCallback on_connection_;
  SessionCallback on_session_;
  StreamCallback on_stream_;
};

}  // namespace retina::core

// Runtime configuration (the `load_config()` surface in paper Fig. 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "conntrack/conn_table.hpp"
#include "nic/flow_rule.hpp"
#include "overload/fault.hpp"
#include "overload/policy.hpp"
#include "rebalance/config.hpp"
#include "sink/config.hpp"

namespace retina::core {

struct RuntimeConfig {
  /// Worker cores; one NIC receive queue per core (paper §5.1).
  std::size_t cores = 1;

  /// Receive descriptor ring size per queue. Overflow = packet loss,
  /// the signal the zero-loss throughput methodology watches (§6.1).
  std::size_t rx_ring_size = 4096;

  /// Packets fetched per receive-queue poll (DPDK rx_burst semantics,
  /// capped at 32). Values > 1 take the batched two-pass pipeline,
  /// which prefetches connection state across the burst; 1 selects the
  /// legacy per-packet path (the burst-equivalence baseline).
  std::size_t rx_burst_size = 32;

  /// Hardware filtering on/off and the device capability model. The
  /// paper's Fig. 5 runs with hardware filtering disabled (flow
  /// sampling is incompatible with flow rules); Fig. 7 runs with it on.
  bool hardware_filter = true;
  nic::NicCapabilities nic_capabilities = nic::NicCapabilities::connectx5();

  /// Fraction of RETA buckets steered to the sink (connection-aware
  /// sampling, §6.1). 0 = analyze everything.
  double sink_fraction = 0.0;

  /// Connection expiry (paper defaults: 5 s establishment, 5 min
  /// inactivity; §5.2).
  conntrack::TimeoutConfig timeouts;

  /// Out-of-order reassembly capacity in packets, per direction
  /// (paper default 500).
  std::size_t ooo_capacity = 500;

  /// Maximum packets buffered per connection while a non-terminal
  /// filter match awaits resolution (Fig. 4a's packet buffering).
  std::size_t conn_packet_buffer = 2048;

  /// Give up probing for the application protocol after this many
  /// payload-bearing segments.
  std::size_t max_probe_pdus = 4;

  /// Use the runtime-interpreted filter engine instead of the compiled
  /// one (Appendix B's baseline).
  bool interpreted_filters = false;

  /// Record per-stage packet counts and CPU cycles (Fig. 7). Small
  /// overhead; off by default.
  bool instrument_stages = false;

  /// Emit (virtual-time, connection-count, bytes) memory samples every
  /// this many nanoseconds (Fig. 8). 0 = off.
  std::uint64_t memory_sample_interval_ns = 0;

  /// Live telemetry: per-core metric registry (counters, gauges, and
  /// per-stage latency histograms) readable while the run is in flight.
  /// Implies `instrument_stages` (histograms need the cycle probes).
  bool telemetry = false;

  /// Wall-clock period of the time-series sampler run_threaded()
  /// starts when telemetry is on. The sampler always records a first
  /// and a final point, so any run yields >= 2 samples. 0 = no sampler.
  std::uint64_t telemetry_sample_interval_ms = 100;

  /// Per-core capacity of the connection-lifecycle span ring (Chrome
  /// trace_event export). 0 = tracing off.
  std::size_t trace_ring_capacity = 0;

  /// Overload control: per-core admission budgets and the degradation
  /// ladder (see overload/policy.hpp). Disabled by default — budgets
  /// only act when `overload.enabled`. Enabling overload control also
  /// creates the metric registry (the controller reads load signals
  /// through it), like `telemetry` does.
  overload::OverloadPolicy overload;

  /// Deterministic ingress fault plan (see overload/fault.hpp). When
  /// enabled the runtime installs a FaultInjector on the SimNic.
  overload::FaultPlan fault_plan;

  /// RSS hash key for the port; empty = the paper's symmetric 0x6d5a
  /// key. Must be 40 bytes when set (validated by Runtime::create /
  /// SimNic::validate; the checked constructors throw/err on misuse).
  std::vector<std::uint8_t> rss_key;

  /// Adaptive RSS rebalancing with stateful flow migration (see
  /// rebalance/rebalancer.hpp). Single-subscription mode only; the
  /// validating factories reject it combined with a SubscriptionSet.
  rebalance::RebalanceConfig rebalance;

  /// Dynamic hardware flow offload of settled connections (see
  /// core/offload.hpp). Requires a device with a non-zero
  /// NicCapabilities::flow_table_slots budget; final connection records
  /// are byte-identical to a no-offload run.
  struct OffloadConfig {
    bool enabled = false;
    /// Idle eviction horizon for offload rules (virtual time). 0 picks
    /// the default (5 s, the connection-establishment timeout scale).
    std::uint64_t ttl_ns = 0;
    /// Packets a freshly installed rule may hold while waiting for the
    /// owning worker's seq-state seed before the install aborts.
    std::size_t capture_limit = 1024;
  };
  OffloadConfig offload;

  /// Bounded IPv4 fragment reassembly in front of conntrack (per-core
  /// stream::FragTable; see stream/frag.hpp). Always on — a fragment
  /// that never completes costs at most the byte budget below. The
  /// overload ladder's shed-reassembly level additionally stops
  /// fragment admission entirely.
  struct FragConfig {
    /// Byte budget for held fragment data per core.
    std::size_t max_bytes = 1u << 20;
    /// Concurrent incomplete datagrams per core.
    std::size_t max_datagrams = 256;
    /// Reassembly timeout on the virtual trace clock.
    std::uint64_t timeout_ns = 30ull * 1000 * 1000 * 1000;
  };
  FragConfig frag;

  /// Columnar flow-record archive (see sink/sink.hpp). Unrelated to
  /// `sink_fraction` above, which is the RETA *sampling* knob; this is
  /// the analytics export sink of ROADMAP item 4. Matched connections
  /// are appended as fixed-schema FlowRecords into per-core arenas and
  /// written out by a dedicated writer thread.
  sink::SinkConfig sink;
};

}  // namespace retina::core

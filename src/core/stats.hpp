// Per-stage instrumentation (paper §6.3, Fig. 7) and end-to-end run
// statistics. Each pipeline counts how many packets (or PDUs/sessions)
// trigger each processing stage and how many CPU cycles the stage
// consumes, demonstrating how filter decomposition hierarchically
// reduces downstream work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "overload/policy.hpp"

namespace retina::core {

/// The processing stages of Fig. 7, in pipeline order.
enum class Stage {
  kHardwareFilter = 0,  // counted by the NIC (zero CPU cost)
  kPacketFilter,
  kConnTracking,
  kReassembly,
  kParsing,             // probe + parse
  kSessionFilter,
  kCallback,
  kCount,
};

const char* stage_name(Stage stage);

struct StageCounters {
  std::uint64_t invocations[static_cast<int>(Stage::kCount)] = {};
  std::uint64_t cycles[static_cast<int>(Stage::kCount)] = {};

  void add(Stage stage, std::uint64_t n = 1) {
    invocations[static_cast<int>(stage)] += n;
  }
  void add_cycles(Stage stage, std::uint64_t c) {
    cycles[static_cast<int>(stage)] += c;
  }
  std::uint64_t count(Stage stage) const {
    return invocations[static_cast<int>(stage)];
  }
  std::uint64_t cycle_total(Stage stage) const {
    return cycles[static_cast<int>(stage)];
  }
  double avg_cycles(Stage stage) const {
    const auto n = count(stage);
    return n == 0 ? 0.0
                  : static_cast<double>(cycle_total(stage)) /
                        static_cast<double>(n);
  }
  void merge(const StageCounters& other);
};

/// One (virtual-time, state) memory sample (Fig. 8).
struct MemorySample {
  std::uint64_t ts_ns = 0;
  std::uint64_t connections = 0;
  std::uint64_t bytes = 0;
};

/// Statistics for one pipeline (core) over one run.
struct PipelineStats {
  std::uint64_t packets = 0;         // packets polled from the queue
  std::uint64_t bytes = 0;
  std::uint64_t delivered_packets = 0;  // packet-level callback runs
  std::uint64_t delivered_conns = 0;    // connection records delivered
  std::uint64_t delivered_sessions = 0; // session callback runs
  std::uint64_t conns_created = 0;
  std::uint64_t conns_dropped_filter = 0;  // removed by filter decision
  std::uint64_t conns_expired = 0;         // removed by timeout
  std::uint64_t conns_terminated = 0;      // natural FIN/RST completion
  std::uint64_t sessions_parsed = 0;
  std::uint64_t probe_failures = 0;  // connections with unknown protocol
  std::uint64_t busy_cycles = 0;     // total cycles spent processing
  std::uint64_t migrations_in = 0;   // connections adopted from a sibling
  std::uint64_t migrations_out = 0;  // connections extracted for migration

  /// IPv4 fragment reassembly in front of conntrack (stream::FragTable).
  std::uint64_t frag_fragments = 0;        // fragments offered to the table
  std::uint64_t frag_reassembled = 0;      // datagrams completed
  std::uint64_t frag_duplicates = 0;       // duplicate/overlapping chunks
  std::uint64_t frag_dropped_budget = 0;   // shed by byte/datagram budget
  std::uint64_t frag_dropped_timeout = 0;  // datagrams expired incomplete
  std::uint64_t frag_dropped_malformed = 0;
  /// Frames whose (innermost) ethertype the parser does not understand —
  /// previously these were skipped silently.
  std::uint64_t unknown_ethertype = 0;

  /// Overload shedding, by the pipeline stage that refused the work
  /// (overload::ShedStage). Zero everywhere unless budgets or the
  /// degradation ladder acted.
  std::uint64_t shed[static_cast<int>(overload::ShedStage::kCount)] = {};
  /// High-water mark of approx_state_bytes() over the run — the number
  /// the state-byte budget bounds.
  std::uint64_t peak_state_bytes = 0;

  std::uint64_t shed_total() const noexcept {
    std::uint64_t total = 0;
    for (const auto n : shed) total += n;
    return total;
  }
  std::uint64_t shed_at(overload::ShedStage stage) const noexcept {
    return shed[static_cast<int>(stage)];
  }

  StageCounters stages;
  std::vector<MemorySample> memory_samples;

  void merge(const PipelineStats& other);
};

/// Whole-run aggregate (all cores + NIC).
struct RunStats {
  PipelineStats total;                    // merged across cores
  std::vector<PipelineStats> per_core;
  std::uint64_t nic_rx_packets = 0;
  std::uint64_t nic_rx_bytes = 0;
  std::uint64_t nic_hw_dropped = 0;
  std::uint64_t nic_sunk = 0;
  std::uint64_t nic_ring_dropped = 0;     // packet loss
  std::uint64_t nic_pool_exhausted = 0;   // injected mbuf-pool failures
  std::uint64_t nic_offload_pkts = 0;     // counted by hardware flow rules
  std::uint64_t nic_offload_bytes = 0;
  std::uint64_t trace_duration_ns = 0;    // virtual time span
  /// Analytics-sink roll-up (config.sink.enabled; zero otherwise).
  std::uint64_t sink_records = 0;         // records accepted into arenas
  std::uint64_t sink_dropped = 0;         // records refused (writer behind)
  std::uint64_t sink_backpressure = 0;    // sink-full events
  std::uint64_t sink_chunks = 0;          // columnar chunks sealed
  std::uint64_t sink_bytes = 0;           // encoded archive bytes written
  double wall_seconds = 0.0;              // host processing time
  double max_core_seconds = 0.0;          // slowest core's busy time
  /// Batch filter-evaluation backend the run dispatched through
  /// ("scalar", "sse-class", "avx2-class"); empty if unknown.
  std::string filter_backend;

  bool zero_loss() const noexcept { return nic_ring_dropped == 0; }
  /// Offered throughput the run *kept up with*, in Gbit/s of ingress
  /// traffic per second of the busiest core (capacity-mode metric).
  double processed_gbps() const noexcept {
    if (max_core_seconds <= 0) return 0.0;
    return static_cast<double>(nic_rx_bytes) * 8.0 / 1e9 / max_core_seconds;
  }

  std::string to_string() const;
};

}  // namespace retina::core

#include "core/runtime.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "filter/decompose.hpp"
#include "telemetry/exporters.hpp"
#include "util/cycles.hpp"
#include "util/logging.hpp"

namespace retina::core {

static_assert(Pipeline::kMaxBurst == nic::SimNic::kMaxBurst,
              "pipeline burst scratch must cover a full NIC rx burst");

namespace {

/// One place builds the port configuration so the constructor and the
/// validating factory cannot drift apart.
nic::PortConfig make_port_config(const RuntimeConfig& config) {
  nic::PortConfig port;
  port.num_queues = config.cores ? config.cores : 1;
  port.ring_capacity = config.rx_ring_size;
  port.capabilities = config.nic_capabilities;
  port.rss_key = config.rss_key;
  return port;
}

/// Config checks shared by both validating factories (everything except
/// the filter compilation, which differs per mode).
Result<bool> validate_config(const RuntimeConfig& config) {
  if (auto port = nic::SimNic::validate(make_port_config(config)); !port) {
    return Err(port.error());
  }
  if (config.sink_fraction < 0.0 || config.sink_fraction > 1.0) {
    return Err("bad config: sink_fraction must be in [0,1]");
  }
  // Overload budgets that cannot admit anything are configuration
  // errors, not degraded modes: an empty connection table (slots +
  // index) already costs ~64 KiB.
  const auto& policy = config.overload;
  if (policy.enabled && policy.max_state_bytes != 0 &&
      policy.max_state_bytes < (128u << 10)) {
    return Err("over-budget config: max-state-mb budget is below the empty "
               "connection table's footprint (needs >= 128 KiB per core)");
  }
  if (config.sink.enabled) {
    if (auto ok = sink::validate(config.sink); !ok) return Err(ok.error());
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<Runtime>> Runtime::create(
    RuntimeConfig config, Subscription subscription,
    const filter::FieldRegistry& field_registry,
    const protocols::ParserRegistry& parser_registry) {
  // Filter: parse + decompose, errors as strings.
  auto decomposed = filter::try_decompose(
      subscription.filter(), field_registry, config.nic_capabilities);
  if (!decomposed) return Err(decomposed.error());
  if (auto ok = validate_config(config); !ok) return Err(ok.error());
  return std::make_unique<Runtime>(std::move(config), std::move(subscription),
                                   field_registry, parser_registry);
}

Result<std::unique_ptr<Runtime>> Runtime::create(
    RuntimeConfig config, multisub::SubscriptionSet set,
    const filter::FieldRegistry& field_registry,
    const protocols::ParserRegistry& parser_registry) {
  // Building the forest decomposes every member filter; errors carry
  // the offending subscription's name.
  auto forest = multisub::FilterForest::build(set, field_registry,
                                              config.nic_capabilities);
  if (!forest) return Err(forest.error());
  if (auto ok = validate_config(config); !ok) return Err(ok.error());
  if (config.rebalance.enabled) {
    return Err("bad config: RSS rebalancing is single-subscription only "
               "(multi-subscription migration is not supported)");
  }
  return std::make_unique<Runtime>(std::move(config), std::move(set),
                                   field_registry, parser_registry);
}

void Runtime::init_common(const nic::FlowRuleSet& hw_rules,
                          const filter::FieldRegistry& field_registry,
                          const protocols::ParserRegistry& parser_registry) {
  // Program the NIC: one receive queue per core, hardware rules from
  // the decomposed filter(s) (if enabled), sink buckets for sampling.
  const nic::PortConfig port = make_port_config(config_);
  nic_ = std::make_unique<nic::SimNic>(port);
  if (config_.hardware_filter) {
    nic_->install_rules(hw_rules);
  }
  if (config_.sink_fraction > 0) {
    nic_->reta().set_sink_fraction(config_.sink_fraction);
  }
  if (config_.fault_plan.enabled) {
    faults_ = std::make_unique<overload::FaultInjector>(config_.fault_plan);
    nic_->set_ingress_fault(faults_.get());
  }

  // Telemetry: histograms need the per-stage cycle probes, so enabling
  // telemetry implies stage instrumentation. Lifecycle tracing rides on
  // the same attachment, so it brings the registry along. Overload
  // control brings the registry too: the controller reads its load
  // signals through the registry's atomics so it can poll while worker
  // threads run.
  if (config_.telemetry) config_.instrument_stages = true;
  if (config_.trace_ring_capacity > 0) {
    spans_ = std::make_unique<telemetry::SpanRecorder>(
        port.num_queues, config_.trace_ring_capacity);
  }
  if (config_.telemetry || spans_ || config_.overload.enabled) {
    metrics_ = std::make_unique<telemetry::MetricRegistry>(port.num_queues);
    // Info gauge: which batch filter backend this runtime dispatches
    // through. The value is the filter::BatchBackend enum; the label
    // carries the human-readable name.
    auto& backend_gauge = metrics_->gauge(
        "retina_filter_backend",
        "Selected batch filter-evaluation backend "
        "(0=scalar, 1=sse-class, 2=avx2-class)",
        "backend", filter_backend_name());
    const auto backend_value = static_cast<std::uint64_t>(
        filter_ ? filter_->backend() : filter::active_batch_backend());
    for (std::size_t core = 0; core < port.num_queues; ++core) {
      backend_gauge.at(core).set(backend_value);
    }
  }

  if (set_) {
    if (config_.rebalance.enabled) {
      // Mirrors the validating factory; the throwing constructor keeps
      // the same contract.
      throw std::runtime_error(
          "bad config: RSS rebalancing is single-subscription only");
    }
    multi_pipelines_.reserve(port.num_queues);
    for (std::size_t core = 0; core < port.num_queues; ++core) {
      multi_pipelines_.push_back(std::make_unique<multisub::MultiPipeline>(
          config_, *set_, *forest_, field_registry, parser_registry));
      multi_pipelines_.back()->attach_overload(&overload_state_);
      if (metrics_) {
        multi_pipelines_.back()->attach_telemetry(
            *metrics_, core, spans_ ? &spans_->ring(core) : nullptr);
      }
    }
  } else {
    pipelines_.reserve(port.num_queues);
    for (std::size_t core = 0; core < port.num_queues; ++core) {
      pipelines_.push_back(
          std::make_unique<Pipeline>(config_, *subscription_, *filter_,
                                     field_registry, parser_registry));
      pipelines_.back()->attach_overload(&overload_state_);
      if (metrics_) {
        pipelines_.back()->attach_telemetry(
            *metrics_, core, spans_ ? &spans_->ring(core) : nullptr);
      }
    }
    if (config_.rebalance.enabled) {
      rebalancer_ = std::make_unique<rebalance::Rebalancer>(
          config_.rebalance, *nic_, pipelines_, metrics_.get());
    }
  }

  // Analytics sink: per-core arena lanes feeding a dedicated writer
  // thread. Matched connections are archived whatever the mode.
  if (config_.sink.enabled) {
    auto sink = sink::FlowSink::create(config_.sink, port.num_queues);
    if (!sink) {
      // Mirrors the validating factory (Runtime::create reports the
      // same failure as an error value).
      throw std::runtime_error(sink.error());
    }
    sink_ = std::move(sink).value();
    for (std::size_t core = 0; core < pipelines_.size(); ++core) {
      pipelines_[core]->attach_sink(sink_.get(), core);
    }
    for (std::size_t core = 0; core < multi_pipelines_.size(); ++core) {
      multi_pipelines_[core]->attach_sink(sink_.get(), core);
    }
  }

  // Dynamic flow offload: settled flows move to exact-match NIC rules
  // counted in hardware. Needs flow table slots on the simulated NIC.
  if (config_.offload.enabled &&
      config_.nic_capabilities.flow_table_slots > 0) {
    std::vector<OffloadClient*> clients;
    clients.reserve(port.num_queues);
    for (auto& pipeline : pipelines_) clients.push_back(pipeline.get());
    for (auto& pipeline : multi_pipelines_) clients.push_back(pipeline.get());
    offload_engine_ = std::make_unique<OffloadEngine>(config_.offload, *nic_,
                                                      std::move(clients));
    for (std::size_t core = 0; core < pipelines_.size(); ++core) {
      pipelines_[core]->attach_offload(offload_engine_.get(), core);
    }
    for (std::size_t core = 0; core < multi_pipelines_.size(); ++core) {
      multi_pipelines_[core]->attach_offload(offload_engine_.get(), core);
    }
  }
}

Runtime::Runtime(RuntimeConfig config, Subscription subscription,
                 const filter::FieldRegistry& field_registry,
                 const protocols::ParserRegistry& parser_registry)
    : config_(std::move(config)), subscription_(std::move(subscription)) {
  // Decompose + build the requested filter engine.
  auto decomposed = filter::decompose(subscription_->filter(), field_registry,
                                      config_.nic_capabilities);
  if (config_.interpreted_filters) {
    filter_ = std::make_unique<filter::InterpretedFilter>(
        std::move(decomposed), field_registry);
  } else {
    filter_ = std::make_unique<filter::CompiledFilter>(
        filter::CompiledFilter::compile(decomposed, field_registry));
  }
  init_common(filter_->hw_rules(), field_registry, parser_registry);
}

Runtime::Runtime(RuntimeConfig config, multisub::SubscriptionSet set,
                 const filter::FieldRegistry& field_registry,
                 const protocols::ParserRegistry& parser_registry)
    : config_(std::move(config)), set_(std::move(set)) {
  auto forest = multisub::FilterForest::build(*set_, field_registry,
                                              config_.nic_capabilities);
  if (!forest) {
    // The throwing constructor mirrors the single-subscription one: use
    // Runtime::create for error values instead of exceptions.
    throw std::runtime_error(forest.error());
  }
  forest_.emplace(std::move(*forest));
  init_common(forest_->hw_rules(), field_registry, parser_registry);
}

Runtime::~Runtime() = default;

multisub::SubStats Runtime::sub_stats(std::size_t sub) const {
  multisub::SubStats total;
  for (const auto& pipeline : multi_pipelines_) {
    const auto& s = pipeline->sub_stats(sub);
    total.conns_matched += s.conns_matched;
    total.delivered += s.delivered;
    total.dropped_filter += s.dropped_filter;
    total.shed += s.shed;
    total.cycles += s.cycles;
  }
  return total;
}

void Runtime::dispatch(const packet::Mbuf& mbuf) {
  if (first_ts_ == 0) first_ts_ = mbuf.timestamp_ns();
  last_ts_ = std::max(last_ts_, mbuf.timestamp_ns());
  // Controller cadence rides the trace clock: deterministic offline,
  // and in threaded mode it runs here — on the thread that owns the
  // RETA — never concurrently with a NIC dispatch.
  if (controller_ && controller_interval_ns_ > 0) {
    const auto ts = mbuf.timestamp_ns();
    if (next_controller_ts_ == 0) {
      next_controller_ts_ = ts + controller_interval_ns_;
    } else if (ts >= next_controller_ts_) {
      controller_(ts);
      next_controller_ts_ = ts + controller_interval_ns_;
    }
  }
  // Rebalancer ticks ride the same virtual clock, on the same thread —
  // the RETA writer — so rebalanced runs stay deterministic too.
  if (rebalancer_ && config_.rebalance.interval_ns > 0) {
    const auto ts = mbuf.timestamp_ns();
    if (next_rebalance_ts_ == 0) {
      next_rebalance_ts_ = ts + config_.rebalance.interval_ns;
    } else if (ts >= next_rebalance_ts_) {
      rebalancer_->tick(ts);
      next_rebalance_ts_ = ts + config_.rebalance.interval_ns;
    }
  }
  // Offload control also rides the dispatch thread: age the rule
  // table, serve install/seed traffic, route eviction records.
  if (offload_engine_) offload_engine_->poll_dispatch(mbuf.timestamp_ns());
  nic_->dispatch(mbuf);
}

std::size_t Runtime::burst_size() const noexcept {
  const std::size_t want = config_.rx_burst_size;
  if (want <= 1) return 1;
  return want < Pipeline::kMaxBurst ? want : Pipeline::kMaxBurst;
}

void Runtime::drain() {
  const std::size_t want = burst_size();
  const std::size_t queues = cores();
  const auto process_one = [this](std::size_t queue, packet::Mbuf mbuf) {
    if (multi()) {
      multi_pipelines_[queue]->process(std::move(mbuf));
    } else {
      pipelines_[queue]->process(std::move(mbuf));
    }
  };
  const auto process_burst = [this](std::size_t queue,
                                    std::span<packet::Mbuf> burst) {
    if (multi()) {
      multi_pipelines_[queue]->process_burst(burst);
    } else {
      pipelines_[queue]->process_burst(burst);
    }
  };
  auto* reb = rebalancer_.get();
  auto* off = offload_engine_.get();
  if (want <= 1) {
    // Legacy per-packet path (rx_burst_size = 1).
    packet::Mbuf mbuf;
    for (std::size_t queue = 0; queue < queues; ++queue) {
      if (reb != nullptr) reb->poll_core(queue);
      if (off != nullptr) off->poll_core(queue);
      while (nic_->poll(queue, mbuf)) {
        if (off != nullptr) off->poll_core(queue);
        if (reb != nullptr) {
          reb->poll_core(queue);
          if (reb->filter_burst(queue, &mbuf, 1) != 0) {
            process_one(queue, std::move(mbuf));
          }
          reb->note_consumed(queue, 1);
        } else {
          process_one(queue, std::move(mbuf));
        }
        if (off != nullptr) off->note_consumed(queue, 1);
      }
      if (reb != nullptr) reb->poll_core(queue);
      if (off != nullptr) off->poll_core(queue);
    }
    return;
  }
  for (std::size_t queue = 0; queue < queues; ++queue) {
    if (reb != nullptr) {
      // Rebalancing path: plain burst loop with the migration hooks at
      // every burst boundary (poll commands/mail, defer in-flight
      // buckets, account consumption).
      std::array<packet::Mbuf, Pipeline::kMaxBurst> buf;
      reb->poll_core(queue);
      if (off != nullptr) off->poll_core(queue);
      std::size_t got;
      while ((got = nic_->poll_burst(queue, buf.data(), want)) > 0) {
        reb->poll_core(queue);
        if (off != nullptr) off->poll_core(queue);
        const std::size_t kept = reb->filter_burst(queue, buf.data(), got);
        if (kept > 0) process_burst(queue, {buf.data(), kept});
        reb->note_consumed(queue, got);
        if (off != nullptr) off->note_consumed(queue, got);
      }
      reb->poll_core(queue);
      if (off != nullptr) off->poll_core(queue);
      continue;
    }
    // Double-buffered receive: poll burst N+1 and warm its leading
    // frames before processing burst N, so the next burst's headers
    // stream in from memory underneath the current burst's work.
    std::array<packet::Mbuf, Pipeline::kMaxBurst> bufs[2];
    std::size_t cur = 0;
    if (off != nullptr) off->poll_core(queue);
    std::size_t got = nic_->poll_burst(queue, bufs[cur].data(), want);
    while (got > 0) {
      const std::size_t next =
          nic_->poll_burst(queue, bufs[cur ^ 1].data(), want);
      if (next > 0) {
        Pipeline::prefetch_frames({bufs[cur ^ 1].data(), next});
      }
      if (off != nullptr) off->poll_core(queue);
      process_burst(queue, {bufs[cur].data(), got});
      if (off != nullptr) off->note_consumed(queue, got);
      cur ^= 1;
      got = next;
    }
    if (off != nullptr) off->poll_core(queue);
  }
}

RunStats Runtime::finish() {
  if (!finished_) {
    drain();
    // Complete any in-flight migrations before finish() walks the
    // tables, or connections stranded in mailboxes would lose their
    // final callbacks.
    if (rebalancer_) rebalancer_->quiesce();
    if (offload_engine_) {
      // Evict every hardware rule so its counters merge back into the
      // connection records finish() is about to deliver; captured
      // packets from still-capturing rules re-enter the rings, so
      // drain once more before settling the control traffic.
      offload_engine_->begin_shutdown();
      offload_engine_->shutdown_flush(last_ts_);
      drain();
      offload_engine_->settle(last_ts_);
    }
    for (auto& pipeline : pipelines_) pipeline->finish();
    for (auto& pipeline : multi_pipelines_) pipeline->finish();
    // The pipelines just appended their final records; seal, drain, and
    // finish the archive (writer thread joins inside).
    if (sink_) sink_->close();
    finished_ = true;
  }
  return collect_stats();
}

RunStats Runtime::run(std::span<const packet::Mbuf> packets) {
  const auto wall_start = std::chrono::steady_clock::now();
  for (const auto& mbuf : packets) {
    dispatch(mbuf);
    // Offline mode keeps rings nearly empty: drain after each dispatch
    // so ring capacity never causes loss and ordering is deterministic.
    drain();
  }
  auto stats = finish();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return stats;
}

RunStats Runtime::run_threaded(std::span<const packet::Mbuf> packets,
                               double time_scale) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  std::vector<double> core_seconds(cores(), 0.0);

  workers.reserve(cores());
  const std::size_t want = burst_size();
  if (rebalancer_) rebalancer_->set_serial(false);
  for (std::size_t core = 0; core < cores(); ++core) {
    workers.emplace_back([this, core, want, &done, &core_seconds] {
      Pipeline* pipeline = multi() ? nullptr : pipelines_[core].get();
      multisub::MultiPipeline* multi_pipeline =
          multi() ? multi_pipelines_[core].get() : nullptr;
      rebalance::Rebalancer* reb = rebalancer_.get();
      OffloadEngine* off = offload_engine_.get();
      packet::Mbuf mbuf;
      std::array<packet::Mbuf, Pipeline::kMaxBurst> bufs[2];
      const auto start = std::chrono::steady_clock::now();
      while (true) {
        bool any = false;
        if (off != nullptr) off->poll_core(core);
        if (reb != nullptr) {
          // Rebalancing worker: burst loop with the migration hooks at
          // every burst boundary. (Rebalancing implies single mode.)
          reb->poll_core(core);
          if (want > 1) {
            std::size_t got;
            while ((got = nic_->poll_burst(core, bufs[0].data(), want)) > 0) {
              any = true;
              reb->poll_core(core);
              if (off != nullptr) off->poll_core(core);
              const std::size_t kept =
                  reb->filter_burst(core, bufs[0].data(), got);
              if (kept > 0) pipeline->process_burst({bufs[0].data(), kept});
              reb->note_consumed(core, got);
              if (off != nullptr) off->note_consumed(core, got);
            }
          } else {
            while (nic_->poll(core, mbuf)) {
              any = true;
              reb->poll_core(core);
              if (off != nullptr) off->poll_core(core);
              if (reb->filter_burst(core, &mbuf, 1) != 0) {
                pipeline->process(std::move(mbuf));
              }
              reb->note_consumed(core, 1);
              if (off != nullptr) off->note_consumed(core, 1);
            }
          }
          reb->poll_core(core);
        } else if (want > 1) {
          // Same double-buffered receive as drain(): warm burst N+1's
          // head frames while burst N is being processed.
          std::size_t cur = 0;
          std::size_t got = nic_->poll_burst(core, bufs[cur].data(), want);
          while (got > 0) {
            const std::size_t next =
                nic_->poll_burst(core, bufs[cur ^ 1].data(), want);
            if (next > 0) {
              Pipeline::prefetch_frames({bufs[cur ^ 1].data(), next});
            }
            // Event-before-packet: drain offload control (evict merges,
            // clear-pendings) enqueued before these packets were pushed.
            if (off != nullptr) off->poll_core(core);
            if (multi_pipeline != nullptr) {
              multi_pipeline->process_burst({bufs[cur].data(), got});
            } else {
              pipeline->process_burst({bufs[cur].data(), got});
            }
            if (off != nullptr) off->note_consumed(core, got);
            any = true;
            cur ^= 1;
            got = next;
          }
        } else {
          while (nic_->poll(core, mbuf)) {
            if (off != nullptr) off->poll_core(core);
            if (multi_pipeline != nullptr) {
              multi_pipeline->process(std::move(mbuf));
            } else {
              pipeline->process(std::move(mbuf));
            }
            if (off != nullptr) off->note_consumed(core, 1);
            any = true;
          }
        }
        if (!any) {
          if (done.load(std::memory_order_acquire)) break;
          std::this_thread::yield();
        }
      }
      core_seconds[core] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    });
  }

  // Live time-series sampler: reads only atomics (NIC counters, metric
  // registry slots), so it can run beside the workers.
  std::unique_ptr<telemetry::Sampler> sampler;
  if (metrics_ && config_.telemetry_sample_interval_ms > 0) {
    sampler = std::make_unique<telemetry::Sampler>(
        std::chrono::milliseconds(config_.telemetry_sample_interval_ms),
        [this] { return capture_sample(); });
    sampler->set_console_sink(live_console_);
    sampler->set_jsonl_sink(live_jsonl_);
    sampler->start();
  }

  const auto dispatch_start = std::chrono::steady_clock::now();
  const std::uint64_t base_ts =
      packets.empty() ? 0 : packets.front().timestamp_ns();
  for (const auto& mbuf : packets) {
    if (time_scale > 0) {
      // Pace to the trace's virtual clock, compressed by time_scale.
      const double target_s =
          static_cast<double>(mbuf.timestamp_ns() - base_ts) / 1e9 /
          time_scale;
      const auto target =
          dispatch_start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(target_s));
      while (std::chrono::steady_clock::now() < target) {
        std::this_thread::yield();
      }
    }
    dispatch(mbuf);
  }
  if (offload_engine_) {
    // The trace is fully dispatched but workers are still draining
    // their rings — keep the offload control path alive (seed answers,
    // eviction routing) until the backlog is gone, like a real NIC's
    // control plane outliving the last received packet.
    for (;;) {
      offload_engine_->poll_dispatch(last_ts_);
      bool busy = false;
      for (std::size_t queue = 0; queue < cores(); ++queue) {
        if (nic_->queue_depth(queue) > 0) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
      std::this_thread::yield();
    }
    offload_engine_->poll_dispatch(last_ts_);
  }
  done.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();

  if (sampler) {
    sampler->stop();  // records the final point
    samples_ = sampler->samples();
  }

  if (rebalancer_) {
    // Workers are gone: back to single-thread semantics, and any
    // migration still in flight must complete before finish().
    rebalancer_->set_serial(true);
    rebalancer_->quiesce();
  }
  if (offload_engine_) {
    // Same teardown as finish(): flush hardware rules, process any
    // re-injected captures serially, settle the control traffic.
    offload_engine_->begin_shutdown();
    offload_engine_->shutdown_flush(last_ts_);
    drain();
    offload_engine_->settle(last_ts_);
  }
  for (auto& pipeline : pipelines_) pipeline->finish();
  for (auto& pipeline : multi_pipelines_) pipeline->finish();
  if (sink_) sink_->close();
  finished_ = true;

  auto stats = collect_stats();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  for (const auto secs : core_seconds) {
    stats.max_core_seconds = std::max(stats.max_core_seconds, secs);
  }
  return stats;
}

telemetry::TelemetrySample Runtime::capture_sample() const {
  telemetry::TelemetrySample sample;
  const auto port_stats = nic_->stats();
  sample.rx_packets = port_stats.rx_packets;
  sample.rx_bytes = port_stats.rx_bytes;
  sample.ring_dropped = port_stats.ring_dropped;
  sample.queue_depth.reserve(cores());
  for (std::size_t queue = 0; queue < cores(); ++queue) {
    sample.queue_depth.push_back(nic_->queue_depth(queue));
  }
  const auto snap = metrics_->snapshot();
  sample.live_conns = snap.value("retina_live_connections");
  sample.state_bytes = snap.value("retina_state_bytes");
  sample.conns_created = snap.value("retina_conns_created_total");
  sample.sessions = snap.value("retina_sessions_parsed_total");
  return sample;
}

std::string Runtime::prometheus() const {
  std::string out;
  if (metrics_) out = telemetry::to_prometheus(metrics_->snapshot());
  const auto port_stats = nic_->stats();
  telemetry::append_prometheus_counter(
      out, "retina_nic_rx_packets_total", "Packets offered to the port",
      port_stats.rx_packets);
  telemetry::append_prometheus_counter(
      out, "retina_nic_rx_bytes_total", "Bytes offered to the port",
      port_stats.rx_bytes);
  telemetry::append_prometheus_counter(
      out, "retina_nic_hw_dropped_total",
      "Packets dropped by hardware flow rules", port_stats.hw_dropped);
  telemetry::append_prometheus_counter(
      out, "retina_nic_ring_dropped_total",
      "Packets lost to receive-ring overflow", port_stats.ring_dropped);
  telemetry::append_prometheus_counter(
      out, "retina_nic_sunk_total", "Packets steered to sink RETA buckets",
      port_stats.sunk);
  telemetry::append_prometheus_counter(
      out, "retina_nic_pool_exhausted_total",
      "Packets lost to injected mbuf-pool exhaustion",
      port_stats.pool_exhausted);
  if (nic_->offload_enabled()) {
    // Totals come from the port's mirrored atomics (tear-free from any
    // thread); rule/eviction detail reads the dispatch-owned table and
    // is meaningful after a run or from the dispatch thread.
    telemetry::append_prometheus_counter(
        out, "retina_offload_pkts_total",
        "Packets counted by hardware offload rules", port_stats.offload_pkts);
    telemetry::append_prometheus_counter(
        out, "retina_offload_bytes_total",
        "Bytes counted by hardware offload rules", port_stats.offload_bytes);
    const auto os = nic_->offload()->stats();
    out += "# HELP retina_offload_rules Hardware offload rules currently "
           "installed\n# TYPE retina_offload_rules gauge\n";
    out += "retina_offload_rules " + std::to_string(os.active_rules) + "\n";
    out += "# HELP retina_offload_evictions_total Offload rules evicted, by "
           "reason\n# TYPE retina_offload_evictions_total counter\n";
    out += "retina_offload_evictions_total{reason=\"ttl\"} " +
           std::to_string(os.evicted_ttl) + "\n";
    out += "retina_offload_evictions_total{reason=\"pressure\"} " +
           std::to_string(os.evicted_pressure) + "\n";
    out += "retina_offload_evictions_total{reason=\"punt\"} " +
           std::to_string(os.evicted_punt) + "\n";
    out += "retina_offload_evictions_total{reason=\"flush\"} " +
           std::to_string(os.evicted_flush) + "\n";
  }
  if (sink_) {
    // Sink progress reads the writer's single-writer cells and the lane
    // counters — tear-free from any thread, live while the run flies.
    const auto ss = sink_->stats();
    telemetry::append_prometheus_counter(
        out, "retina_sink_records_total",
        "Flow records accepted into sink arenas", ss.records_appended);
    telemetry::append_prometheus_counter(
        out, "retina_sink_dropped_total",
        "Flow records refused by a full sink (writer behind)",
        ss.records_dropped);
    telemetry::append_prometheus_counter(
        out, "retina_sink_backpressure_total",
        "Sink-full backpressure events", ss.backpressure_events);
    telemetry::append_prometheus_counter(
        out, "retina_sink_chunks_total", "Columnar chunks sealed",
        ss.chunks_sealed);
    telemetry::append_prometheus_counter(
        out, "retina_sink_bytes_total", "Encoded archive bytes written",
        ss.bytes_written);
    out += "# HELP retina_sink_arena_backlog Sealed arenas queued for the "
           "writer thread\n# TYPE retina_sink_arena_backlog gauge\n";
    out += "retina_sink_arena_backlog " + std::to_string(ss.sealed_backlog) +
           "\n";
  }
  // Per-queue breakdown of the ring counters (the rebalancer's load /
  // loss signals, exported so skew is visible from outside too).
  out += "# HELP retina_nic_queue_enqueued_total Packets enqueued to each "
         "receive ring\n# TYPE retina_nic_queue_enqueued_total counter\n";
  for (std::size_t queue = 0; queue < cores(); ++queue) {
    out += "retina_nic_queue_enqueued_total{queue=\"" +
           std::to_string(queue) + "\"} " +
           std::to_string(nic_->queue_enqueued(queue)) + "\n";
  }
  out += "# HELP retina_nic_queue_dropped_total Ring-full drops charged to "
         "each receive queue\n# TYPE retina_nic_queue_dropped_total counter\n";
  for (std::size_t queue = 0; queue < cores(); ++queue) {
    out += "retina_nic_queue_dropped_total{queue=\"" +
           std::to_string(queue) + "\"} " +
           std::to_string(nic_->queue_dropped(queue)) + "\n";
  }
  return out;
}

RunStats Runtime::collect_stats() const {
  RunStats stats;
  double max_core_cycles = 0.0;
  for (const auto& pipeline : pipelines_) {
    stats.per_core.push_back(pipeline->stats());
    stats.total.merge(pipeline->stats());
    max_core_cycles = std::max(
        max_core_cycles, static_cast<double>(pipeline->stats().busy_cycles));
  }
  for (const auto& pipeline : multi_pipelines_) {
    stats.per_core.push_back(pipeline->stats());
    stats.total.merge(pipeline->stats());
    max_core_cycles = std::max(
        max_core_cycles, static_cast<double>(pipeline->stats().busy_cycles));
  }
  const auto& port_stats = nic_->stats();
  stats.nic_rx_packets = port_stats.rx_packets;
  stats.nic_rx_bytes = port_stats.rx_bytes;
  stats.nic_hw_dropped = port_stats.hw_dropped;
  stats.nic_sunk = port_stats.sunk;
  stats.nic_ring_dropped = port_stats.ring_dropped;
  stats.nic_pool_exhausted = port_stats.pool_exhausted;
  stats.nic_offload_pkts = port_stats.offload_pkts;
  stats.nic_offload_bytes = port_stats.offload_bytes;
  stats.trace_duration_ns = last_ts_ > first_ts_ ? last_ts_ - first_ts_ : 0;
  if (sink_) {
    const auto sink_stats = sink_->stats();
    stats.sink_records = sink_stats.records_appended;
    stats.sink_dropped = sink_stats.records_dropped;
    stats.sink_backpressure = sink_stats.backpressure_events;
    stats.sink_chunks = sink_stats.chunks_sealed;
    stats.sink_bytes = sink_stats.bytes_written;
  }
  // Hardware-filter stage accounting (Fig. 7): every ingress packet
  // triggers it, at zero CPU cost.
  stats.total.stages.invocations[static_cast<int>(Stage::kHardwareFilter)] =
      port_stats.rx_packets;
  if (stats.max_core_seconds == 0.0) {
    stats.max_core_seconds = util::cycles_to_seconds(
        static_cast<std::uint64_t>(max_core_cycles));
  }
  stats.filter_backend = filter_backend_name();
  return stats;
}

const char* Runtime::filter_backend_name() const noexcept {
  // The single-subscription engine reports through the Evaluator (the
  // interpreter pins kScalar — it IS the scalar baseline); the multisub
  // forest's batch program dispatches through the process-wide backend.
  return filter::batch_backend_name(filter_ ? filter_->backend()
                                            : filter::active_batch_backend());
}

}  // namespace retina::core

#include "core/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "filter/decompose.hpp"
#include "util/cycles.hpp"
#include "util/logging.hpp"

namespace retina::core {

Runtime::Runtime(RuntimeConfig config, Subscription subscription,
                 const filter::FieldRegistry& field_registry,
                 const protocols::ParserRegistry& parser_registry)
    : config_(std::move(config)), subscription_(std::move(subscription)) {
  // Decompose + build the requested filter engine.
  auto decomposed = filter::decompose(subscription_.filter(), field_registry,
                                      config_.nic_capabilities);
  if (config_.interpreted_filters) {
    filter_ = std::make_unique<InterpretedFilterEngine>(
        filter::InterpretedFilter(std::move(decomposed), field_registry));
  } else {
    filter_ = std::make_unique<CompiledFilterEngine>(
        filter::CompiledFilter::compile(decomposed, field_registry));
  }

  // Program the NIC: one receive queue per core, hardware rules from
  // the decomposed filter (if enabled), sink buckets for sampling.
  nic::PortConfig port;
  port.num_queues = config_.cores ? config_.cores : 1;
  port.ring_capacity = config_.rx_ring_size;
  port.capabilities = config_.nic_capabilities;
  nic_ = std::make_unique<nic::SimNic>(port);
  if (config_.hardware_filter) {
    nic_->install_rules(filter_->hw_rules());
  }
  if (config_.sink_fraction > 0) {
    nic_->reta().set_sink_fraction(config_.sink_fraction);
  }

  pipelines_.reserve(port.num_queues);
  for (std::size_t core = 0; core < port.num_queues; ++core) {
    pipelines_.push_back(
        std::make_unique<Pipeline>(config_, subscription_, *filter_,
                                   field_registry, parser_registry));
  }
}

Runtime::~Runtime() = default;

void Runtime::dispatch(const packet::Mbuf& mbuf) {
  if (first_ts_ == 0) first_ts_ = mbuf.timestamp_ns();
  last_ts_ = std::max(last_ts_, mbuf.timestamp_ns());
  nic_->dispatch(mbuf);
}

void Runtime::drain() {
  packet::Mbuf mbuf;
  for (std::size_t queue = 0; queue < pipelines_.size(); ++queue) {
    while (nic_->poll(queue, mbuf)) {
      pipelines_[queue]->process(std::move(mbuf));
    }
  }
}

RunStats Runtime::finish() {
  if (!finished_) {
    drain();
    for (auto& pipeline : pipelines_) pipeline->finish();
    finished_ = true;
  }
  return collect_stats();
}

RunStats Runtime::run(std::span<const packet::Mbuf> packets) {
  const auto wall_start = std::chrono::steady_clock::now();
  for (const auto& mbuf : packets) {
    dispatch(mbuf);
    // Offline mode keeps rings nearly empty: drain after each dispatch
    // so ring capacity never causes loss and ordering is deterministic.
    drain();
  }
  auto stats = finish();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return stats;
}

RunStats Runtime::run_threaded(std::span<const packet::Mbuf> packets,
                               double time_scale) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  std::vector<double> core_seconds(pipelines_.size(), 0.0);

  workers.reserve(pipelines_.size());
  for (std::size_t core = 0; core < pipelines_.size(); ++core) {
    workers.emplace_back([this, core, &done, &core_seconds] {
      auto& pipeline = *pipelines_[core];
      packet::Mbuf mbuf;
      const auto start = std::chrono::steady_clock::now();
      while (true) {
        bool any = false;
        while (nic_->poll(core, mbuf)) {
          pipeline.process(std::move(mbuf));
          any = true;
        }
        if (!any) {
          if (done.load(std::memory_order_acquire)) break;
          std::this_thread::yield();
        }
      }
      core_seconds[core] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    });
  }

  const auto dispatch_start = std::chrono::steady_clock::now();
  const std::uint64_t base_ts =
      packets.empty() ? 0 : packets.front().timestamp_ns();
  for (const auto& mbuf : packets) {
    if (time_scale > 0) {
      // Pace to the trace's virtual clock, compressed by time_scale.
      const double target_s =
          static_cast<double>(mbuf.timestamp_ns() - base_ts) / 1e9 /
          time_scale;
      const auto target =
          dispatch_start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(target_s));
      while (std::chrono::steady_clock::now() < target) {
        std::this_thread::yield();
      }
    }
    dispatch(mbuf);
  }
  done.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();

  for (auto& pipeline : pipelines_) pipeline->finish();
  finished_ = true;

  auto stats = collect_stats();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  for (const auto secs : core_seconds) {
    stats.max_core_seconds = std::max(stats.max_core_seconds, secs);
  }
  return stats;
}

RunStats Runtime::collect_stats() const {
  RunStats stats;
  double max_core_cycles = 0.0;
  for (const auto& pipeline : pipelines_) {
    stats.per_core.push_back(pipeline->stats());
    stats.total.merge(pipeline->stats());
    max_core_cycles = std::max(
        max_core_cycles, static_cast<double>(pipeline->stats().busy_cycles));
  }
  const auto& port_stats = nic_->stats();
  stats.nic_rx_packets = port_stats.rx_packets;
  stats.nic_rx_bytes = port_stats.rx_bytes;
  stats.nic_hw_dropped = port_stats.hw_dropped;
  stats.nic_sunk = port_stats.sunk;
  stats.nic_ring_dropped = port_stats.ring_dropped;
  stats.trace_duration_ns = last_ts_ > first_ts_ ? last_ts_ - first_ts_ : 0;
  // Hardware-filter stage accounting (Fig. 7): every ingress packet
  // triggers it, at zero CPU cost.
  stats.total.stages.invocations[static_cast<int>(Stage::kHardwareFilter)] =
      port_stats.rx_packets;
  if (stats.max_core_seconds == 0.0) {
    stats.max_core_seconds = util::cycles_to_seconds(
        static_cast<std::uint64_t>(max_core_cycles));
  }
  return stats;
}

}  // namespace retina::core

#include "core/subscription.hpp"

#include "filter/decompose.hpp"
#include "filter/field_registry.hpp"

namespace retina::core {

Subscription Subscription::make(Level level, std::string filter) {
  Subscription s;
  s.level_ = level;
  s.filter_ = std::move(filter);
  return s;
}

SessionCallback Subscription::wrap_tls(
    std::function<void(const SessionRecord&, const protocols::TlsHandshake&)>
        callback) {
  return [cb = std::move(callback)](const SessionRecord& rec) {
    if (const auto* hs = rec.session.get<protocols::TlsHandshake>()) {
      cb(rec, *hs);
    }
  };
}

SessionCallback Subscription::wrap_http(
    std::function<void(const SessionRecord&,
                       const protocols::HttpTransaction&)> callback) {
  return [cb = std::move(callback)](const SessionRecord& rec) {
    if (const auto* tx = rec.session.get<protocols::HttpTransaction>()) {
      cb(rec, *tx);
    }
  };
}

Subscription::Builder Subscription::builder() { return Builder{}; }

Subscription&& Subscription::with_parsers(
    std::vector<std::string> parsers) && {
  for (auto& p : parsers) extra_parsers_.push_back(std::move(p));
  return std::move(*this);
}

void Subscription::deliver_packet(const packet::Mbuf& mbuf) const {
  if (on_packet_) on_packet_(mbuf);
}

void Subscription::deliver_connection(const ConnRecord& record) const {
  if (on_connection_) on_connection_(record);
}

void Subscription::deliver_session(const SessionRecord& record) const {
  if (on_session_) on_session_(record);
}

void Subscription::deliver_stream(const StreamChunk& chunk) const {
  if (on_stream_) on_stream_(chunk);
}

// ---------------------------------------------------------------------------
// Builder

Subscription::Builder& Subscription::Builder::filter(
    std::string expression) & {
  filter_ = std::move(expression);
  return *this;
}

Subscription::Builder& Subscription::Builder::level(Level level) & {
  has_level_ = true;
  level_ = level;
  return *this;
}

Subscription::Builder& Subscription::Builder::set_callback(
    Level level, PacketCallback packet_cb, ConnCallback conn_cb,
    SessionCallback session_cb, StreamCallback stream_cb) {
  ++callbacks_set_;
  callback_level_ = level;
  on_packet_ = std::move(packet_cb);
  on_connection_ = std::move(conn_cb);
  on_session_ = std::move(session_cb);
  on_stream_ = std::move(stream_cb);
  return *this;
}

Subscription::Builder& Subscription::Builder::on_packet(
    PacketCallback callback) & {
  return set_callback(Level::kPacket, std::move(callback), {}, {}, {});
}

Subscription::Builder& Subscription::Builder::on_connection(
    ConnCallback callback) & {
  return set_callback(Level::kConnection, {}, std::move(callback), {}, {});
}

Subscription::Builder& Subscription::Builder::on_session(
    SessionCallback callback) & {
  return set_callback(Level::kSession, {}, {}, std::move(callback), {});
}

Subscription::Builder& Subscription::Builder::on_stream(
    StreamCallback callback) & {
  return set_callback(Level::kStream, {}, {}, {}, std::move(callback));
}

Subscription::Builder& Subscription::Builder::on_tls_handshake(
    std::function<void(const SessionRecord&, const protocols::TlsHandshake&)>
        callback) & {
  set_callback(Level::kSession, {}, {},
               Subscription::wrap_tls(std::move(callback)), {});
  required_parsers_.push_back("tls");
  return *this;
}

Subscription::Builder& Subscription::Builder::on_http_transaction(
    std::function<void(const SessionRecord&,
                       const protocols::HttpTransaction&)> callback) & {
  set_callback(Level::kSession, {}, {},
               Subscription::wrap_http(std::move(callback)), {});
  required_parsers_.push_back("http");
  return *this;
}

Subscription::Builder& Subscription::Builder::parsers(
    std::vector<std::string> parsers) & {
  for (auto& p : parsers) required_parsers_.push_back(std::move(p));
  return *this;
}

Subscription::Builder&& Subscription::Builder::filter(
    std::string expression) && {
  return std::move(filter(std::move(expression)));
}
Subscription::Builder&& Subscription::Builder::level(Level level) && {
  return std::move(this->level(level));
}
Subscription::Builder&& Subscription::Builder::on_packet(
    PacketCallback callback) && {
  return std::move(on_packet(std::move(callback)));
}
Subscription::Builder&& Subscription::Builder::on_connection(
    ConnCallback callback) && {
  return std::move(on_connection(std::move(callback)));
}
Subscription::Builder&& Subscription::Builder::on_session(
    SessionCallback callback) && {
  return std::move(on_session(std::move(callback)));
}
Subscription::Builder&& Subscription::Builder::on_stream(
    StreamCallback callback) && {
  return std::move(on_stream(std::move(callback)));
}
Subscription::Builder&& Subscription::Builder::on_tls_handshake(
    std::function<void(const SessionRecord&, const protocols::TlsHandshake&)>
        callback) && {
  return std::move(on_tls_handshake(std::move(callback)));
}
Subscription::Builder&& Subscription::Builder::on_http_transaction(
    std::function<void(const SessionRecord&,
                       const protocols::HttpTransaction&)> callback) && {
  return std::move(on_http_transaction(std::move(callback)));
}
Subscription::Builder&& Subscription::Builder::parsers(
    std::vector<std::string> parsers) && {
  return std::move(this->parsers(std::move(parsers)));
}

Result<Subscription> Subscription::Builder::build() const {
  return build(filter::FieldRegistry::builtin());
}

Result<Subscription> Subscription::Builder::build(
    const filter::FieldRegistry& fields) const {
  if (callbacks_set_ == 0) {
    return Err(
        "subscription has no callback: set exactly one of on_packet, "
        "on_connection, on_session, on_stream (or a typed on_* variant)");
  }
  if (callbacks_set_ > 1) {
    return Err(
        "subscription has multiple callbacks: a subscription delivers one "
        "data type; build one Subscription per callback");
  }
  if (has_level_ && level_ != callback_level_) {
    const char* const names[] = {"packet", "connection", "session", "stream"};
    return Err(std::string("subscription level mismatch: .level(") +
               names[static_cast<int>(level_)] + ") contradicts the on_" +
               names[static_cast<int>(callback_level_)] + " callback");
  }

  // Compile the filter now so the error surfaces at build() rather than
  // as a FilterError throw when the Runtime is constructed.
  auto compiled = filter::try_decompose(filter_, fields);
  if (!compiled) return Err(compiled.error());

  auto s = Subscription::make(callback_level_, filter_);
  s.extra_parsers_ = required_parsers_;
  s.on_packet_ = on_packet_;
  s.on_connection_ = on_connection_;
  s.on_session_ = on_session_;
  s.on_stream_ = on_stream_;
  return s;
}

}  // namespace retina::core

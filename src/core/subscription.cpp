#include "core/subscription.hpp"

namespace retina::core {

Subscription Subscription::packets(std::string filter,
                                   PacketCallback callback) {
  Subscription s;
  s.level_ = Level::kPacket;
  s.filter_ = std::move(filter);
  s.on_packet_ = std::move(callback);
  return s;
}

Subscription Subscription::connections(std::string filter,
                                       ConnCallback callback) {
  Subscription s;
  s.level_ = Level::kConnection;
  s.filter_ = std::move(filter);
  s.on_connection_ = std::move(callback);
  return s;
}

Subscription Subscription::sessions(std::string filter,
                                    SessionCallback callback) {
  Subscription s;
  s.level_ = Level::kSession;
  s.filter_ = std::move(filter);
  s.on_session_ = std::move(callback);
  return s;
}

Subscription Subscription::byte_streams(std::string filter,
                                        StreamCallback callback) {
  Subscription s;
  s.level_ = Level::kStream;
  s.filter_ = std::move(filter);
  s.on_stream_ = std::move(callback);
  return s;
}

Subscription Subscription::tls_handshakes(
    std::string filter,
    std::function<void(const SessionRecord&, const protocols::TlsHandshake&)>
        callback) {
  auto s = sessions(std::move(filter),
                    [cb = std::move(callback)](const SessionRecord& rec) {
                      if (const auto* hs =
                              rec.session.get<protocols::TlsHandshake>()) {
                        cb(rec, *hs);
                      }
                    });
  s.extra_parsers_.push_back("tls");
  return s;
}

Subscription Subscription::http_transactions(
    std::string filter,
    std::function<void(const SessionRecord&,
                       const protocols::HttpTransaction&)> callback) {
  auto s = sessions(std::move(filter),
                    [cb = std::move(callback)](const SessionRecord& rec) {
                      if (const auto* tx =
                              rec.session.get<protocols::HttpTransaction>()) {
                        cb(rec, *tx);
                      }
                    });
  s.extra_parsers_.push_back("http");
  return s;
}

Subscription&& Subscription::with_parsers(
    std::vector<std::string> parsers) && {
  for (auto& p : parsers) extra_parsers_.push_back(std::move(p));
  return std::move(*this);
}

void Subscription::deliver_packet(const packet::Mbuf& mbuf) const {
  if (on_packet_) on_packet_(mbuf);
}

void Subscription::deliver_connection(const ConnRecord& record) const {
  if (on_connection_) on_connection_(record);
}

void Subscription::deliver_session(const SessionRecord& record) const {
  if (on_session_) on_session_(record);
}

void Subscription::deliver_stream(const StreamChunk& chunk) const {
  if (on_stream_) on_stream_(chunk);
}

}  // namespace retina::core

// Golden-trace differential harness. A golden run replays a pcap-sized
// trace through one dispatch path — serial per-packet, serial burst,
// threaded, or either of those with RSS rebalancing forced on — and
// records every subscription callback as one canonical JSON line. Two
// runs are equivalent iff their canonical streams are identical.
//
// Canonical form: every line carries the connection's canonicalized
// five-tuple plus a zero-padded per-connection sequence number, and the
// stream is sorted lexicographically. Cross-connection interleaving
// legitimately differs between dispatch paths (cores drain their rings
// independently), but per-connection callback order never may — the
// sort folds away the former while the embedded sequence numbers pin
// the latter, so a plain line-by-line diff catches any reordering,
// loss, duplication, or field-level divergence inside a connection.
// Payload-bearing events (packets, stream chunks) embed an FNV-1a hash
// of their bytes, making "byte-identical" literal.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "core/subscription.hpp"
#include "packet/mbuf.hpp"

namespace retina::core::golden {

/// Which dispatch machinery carries the packets.
enum class DispatchPath {
  kSerialPacket,      // run(), rx_burst_size = 1
  kSerialBurst,       // run(), batched two-pass pipeline
  kThreaded,          // run_threaded(), one worker per core
  kSerialRebalance,   // serial burst + forced bucket migration
  kThreadedRebalance  // threaded + forced bucket migration
};

const char* dispatch_path_name(DispatchPath path) noexcept;

/// All five paths, in the order tests iterate them.
std::span<const DispatchPath> all_dispatch_paths() noexcept;

struct GoldenSpec {
  std::string filter;            // subscription filter ("" = everything)
  Level level = Level::kConnection;
  std::size_t cores = 4;
  DispatchPath path = DispatchPath::kSerialPacket;
  // Dynamic hardware flow offload. The canonical stream must be
  // byte-identical with offload on or off — hardware counters merge
  // back into the very records the callbacks see.
  bool offload = false;
  // When non-empty, the run also archives every matched connection to
  // a columnar sink file at this path (the golden sink lane diffs the
  // reconstructed records against the committed conn stream).
  std::string sink_path;
};

struct GoldenResult {
  std::vector<std::string> lines;  // sorted canonical JSONL
  std::uint64_t migrations = 0;    // connections adopted mid-run
  std::uint64_t reta_rewrites = 0;
  std::uint64_t dropped = 0;       // ring overflow (must be 0 for golden)
};

/// Thread-safe callback recorder. Workers append concurrently during
/// run_threaded(); per-connection sequence numbers are handed out under
/// the same lock, so they follow each connection's callback order.
class GoldenRecorder {
 public:
  /// Build a subscription whose callback records into this recorder.
  /// The recorder must outlive the Runtime using the subscription.
  Result<Subscription> subscribe(Level level, const std::string& filter);

  /// Sorted canonical stream (call after the run completes).
  std::vector<std::string> lines() const;

 private:
  void record(const std::string& key, std::string fields);

  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  std::map<std::string, std::uint64_t> seq_;
};

/// Replay `packets` through the path `spec` names and return the
/// canonical stream. Throws std::runtime_error on a bad filter.
GoldenResult run_golden(std::span<const packet::Mbuf> packets,
                        const GoldenSpec& spec);

/// FNV-1a 64-bit — stable across platforms, unlike std::hash.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

// Canonical-line building blocks, exposed so the sink lane can
// reconstruct conn lines from archived FlowRecords and diff them
// against recorder output byte for byte. The formatting is shared with
// GoldenRecorder — there is exactly one definition of a conn line.

/// Direction-independent connection key (canonicalized tuple string).
std::string conn_key(const packet::FiveTuple& tuple);

/// The ",\"event\":\"conn\",..." tail of a connection line.
std::string conn_fields(const ConnRecord& rec);

/// Assemble one canonical line from key + per-key sequence + fields.
std::string make_line(const std::string& key, std::uint64_t seq,
                      const std::string& fields);

/// "\n"-joined lines with a trailing newline (empty string when empty).
std::string join_lines(const std::vector<std::string>& lines);

/// Read a JSONL file into (unsorted) lines; empty vector if unreadable.
/// Blank lines are skipped so hand-edited files stay comparable.
std::vector<std::string> read_jsonl(const std::string& path);

/// Write lines as JSONL. Returns false on I/O failure.
bool write_jsonl(const std::string& path,
                 const std::vector<std::string>& lines);

}  // namespace retina::core::golden

// OffloadEngine: the control path between worker pipelines and the
// SimNic's dynamic flow offload table. Mirrors the PR 5 rebalancer
// mailbox discipline: per-core SPSC rings carry messages between each
// worker and the dispatch thread, and every cross-thread effect is
// ordered by the rings (an event enqueued before a packet is pushed is
// always drained before that packet is processed, because workers poll
// their event ring before every burst).
//
// Install handshake (exact-by-construction seq seeding):
//
//   worker                 dispatch thread                NIC table
//   ------                 ---------------                ---------
//   settled flow:
//   kInstall ───────────►  install rule (capturing) ───►  holds pkts
//                          kSeedRequest{barrier} ──┐
//   barrier met:       ◄───────────────────────────┘
//   park conn, snapshot
//   seq state
//   kSeed ─────────────►   seed + replay held pkts ───►  rule active
//
// The barrier is the queue's cumulative enqueue count at install time:
// once the worker has consumed that many packets, every packet that
// was steered to software before the rule existed has been accounted,
// so the snapshot is exactly the state hardware must continue from.
//
// Evictions (TTL, pressure, punt-on-flags, shutdown) flow back as
// records routed by the *current* RETA assignment of the flow's RSS
// hash; a record that misses (flow migrated mid-eviction) bounces back
// for re-routing, and finally lands in an orphan list that settle()
// applies by probing every client.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/offload_client.hpp"
#include "nic/port.hpp"
#include "util/atomics.hpp"
#include "util/spsc_ring.hpp"

namespace retina::core {

struct OffloadEngineStats {
  std::uint64_t installs_requested = 0;
  std::uint64_t installs_refused = 0;  // shutdown, table full, sink route
  std::uint64_t seed_failures = 0;     // entry vanished before parking
  std::uint64_t merges = 0;
  std::uint64_t bounces = 0;
  std::uint64_t orphaned = 0;
};

class OffloadEngine : public OffloadRequester {
 public:
  /// `clients[i]` must be the pipeline consuming NIC queue i. The
  /// engine enables the offload table on `nic` (TTL defaulted to 5 s
  /// when the config leaves it 0).
  OffloadEngine(const RuntimeConfig::OffloadConfig& config, nic::SimNic& nic,
                std::vector<OffloadClient*> clients);

  // ---- worker side (core = the worker's queue index) ----
  bool request_install(std::size_t core, const OffloadRequest& req) override;
  /// Account `n` packets consumed by the worker (the seed barrier
  /// signal). Call after every poll/poll_burst batch.
  void note_consumed(std::size_t core, std::uint64_t n) {
    cores_[core]->consumed += n;
  }
  /// Drain control messages for this worker. Must run before the
  /// worker processes any packets from its ring (event-before-packet
  /// ordering).
  void poll_core(std::size_t core);

  // ---- dispatch side ----
  /// Age the table, process worker requests, route eviction events.
  /// Call before dispatching each packet (virtual time `now_ns`).
  void poll_dispatch(std::uint64_t now_ns);
  /// Stop accepting installs (start of teardown).
  void begin_shutdown() { shutdown_ = true; }
  bool shutting_down() const noexcept { return shutdown_; }
  /// Evict every rule; aborted captures re-enter the rx rings.
  void shutdown_flush(std::uint64_t now_ns);
  /// Single-threaded teardown: ping-pong the remaining control traffic
  /// until quiet, then apply orphaned eviction records by probing every
  /// client. Workers must have stopped.
  void settle(std::uint64_t now_ns);

  OffloadEngineStats stats() const;

 private:
  struct UpMsg {  // worker -> dispatch
    enum class Kind : std::uint8_t { kInstall, kSeed, kSeedFail, kBounce };
    Kind kind = Kind::kInstall;
    OffloadRequest req{};           // kInstall
    packet::FiveTuple key{};        // kSeed / kSeedFail
    nic::OffloadSeed seed{};        // kSeed
    nic::OffloadEvictRecord rec{};  // kBounce
  };
  struct DownMsg {  // dispatch -> worker
    enum class Kind : std::uint8_t { kSeedRequest, kEvict, kClearPending };
    Kind kind = Kind::kSeedRequest;
    packet::FiveTuple key{};        // kSeedRequest / kClearPending
    std::uint64_t barrier = 0;      // kSeedRequest
    nic::OffloadEvictRecord rec{};  // kEvict
  };

  struct CoreState {
    util::SpscRing<UpMsg> up{256};
    util::SpscRing<DownMsg> down{1024};
    // Worker-owned.
    std::uint64_t consumed = 0;
    std::vector<DownMsg> waiting;      // seed requests, barrier unmet
    std::vector<UpMsg> up_overflow;    // retried next poll_core
    util::RelaxedCell requested, merges, bounces;
  };

  void handle_up(std::size_t core, UpMsg& msg, std::uint64_t now_ns);
  void handle_down(std::size_t core, DownMsg& msg);
  void answer_seed_request(std::size_t core, const DownMsg& msg);
  void push_up(std::size_t core, UpMsg&& msg);
  void route_events();
  void route_evict(nic::OffloadEvictRecord&& rec);
  std::uint32_t route_queue(std::uint32_t rss_hash) const;

  static constexpr std::uint8_t kMaxBounces = 8;

  nic::SimNic& nic_;
  std::vector<OffloadClient*> clients_;
  std::vector<std::unique_ptr<CoreState>> cores_;
  // Dispatch-owned.
  std::vector<nic::OffloadEvictRecord> orphans_;
  bool shutdown_ = false;
  util::RelaxedCell refused_, seed_failures_, orphaned_;
};

}  // namespace retina::core

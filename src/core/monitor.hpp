// Real-time operational monitoring (paper §5.3): Retina reports packet
// loss, throughput, and memory usage so users can tell when a callback
// is too slow or a filter too broad, and react (buffer writes, add
// cores, narrow the filter). RuntimeMonitor polls a Runtime and keeps a
// rolling history of snapshots; `advise()` turns the latest window into
// the kind of feedback the paper describes.
#pragma once

#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace retina::core {

struct MonitorSnapshot {
  std::uint64_t ts_ns = 0;           // virtual time of the snapshot
  std::uint64_t packets = 0;         // cumulative packets processed
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;         // cumulative rx-ring drops (loss)
  std::uint64_t connections = 0;     // currently tracked
  std::uint64_t state_bytes = 0;     // approximate connection state

  // Deltas relative to the previous snapshot.
  double interval_s = 0;
  double gbps = 0;
  double drop_rate = 0;  // fraction of packets lost in the interval
};

class RuntimeMonitor {
 public:
  explicit RuntimeMonitor(Runtime& runtime) : runtime_(&runtime) {}

  /// Take a snapshot at virtual time `now_ns`. Returns the snapshot and
  /// appends it to the history.
  const MonitorSnapshot& poll(std::uint64_t now_ns);

  const std::vector<MonitorSnapshot>& history() const noexcept {
    return history_;
  }

  /// Sustained non-zero loss over the recent window? (The condition the
  /// paper flags as "consider a buffered writer / more cores / a
  /// narrower filter".)
  bool sustained_loss(std::size_t window = 3) const;

  /// One-line operator-facing status from the latest snapshot.
  std::string status_line() const;

 private:
  Runtime* runtime_;
  std::vector<MonitorSnapshot> history_;
};

}  // namespace retina::core

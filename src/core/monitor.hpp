// Real-time operational monitoring (paper §5.3), extended into a
// closed-loop overload controller. Retina reports packet loss,
// throughput, and memory usage so users can tell when a callback is too
// slow or a filter too broad; RuntimeMonitor polls a Runtime, keeps a
// rolling history of snapshots, and turns the recent window into
// structured Advice. `apply()` goes one step further and *acts*:
// under sustained loss or memory pressure it walks the degradation
// ladder (overload::DegradeLevel) one rung per decision and, at the
// last rung, steers RETA buckets to the sink (§6.1 flow sampling);
// when the load subsides it walks back down. Hysteresis on both edges
// — escalation needs `loss_window` consecutive lossy polls, recovery
// needs `clean_window` consecutive clean ones, and every action starts
// a fresh observation window — keeps the controller from oscillating.
#pragma once

#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "overload/policy.hpp"

namespace retina::core {

struct MonitorSnapshot {
  std::uint64_t ts_ns = 0;           // virtual time of the snapshot
  std::uint64_t packets = 0;         // cumulative packets processed
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;         // cumulative rx-ring drops (loss)
  std::uint64_t connections = 0;     // currently tracked
  std::uint64_t state_bytes = 0;     // approximate connection state
  std::uint64_t sink_backpressure = 0;  // cumulative sink-full events

  // Deltas relative to the previous snapshot.
  double interval_s = 0;
  double gbps = 0;
  double drop_rate = 0;  // fraction of packets lost in the interval
};

/// What the controller would do (or just did) about the recent window.
struct Advice {
  enum class Action {
    kNone,     // situation nominal (or still inside a hysteresis window)
    kDegrade,  // escalate one ladder rung / widen the sink
    kRecover,  // walk one rung back down / narrow the sink
  };
  Action action = Action::kNone;
  /// Target ladder level (current level when action == kNone).
  overload::DegradeLevel level = overload::DegradeLevel::kNormal;
  /// Target RETA sink fraction (baseline + controller boost).
  double sink_fraction = 0.0;
  /// Operator-facing justification ("sustained rx-ring loss", ...).
  std::string reason;
};

/// Control-loop tuning. Defaults favor stability over reaction speed.
struct ControlConfig {
  /// Consecutive lossy polls before escalating (and the minimum number
  /// of polls between two escalations).
  std::size_t loss_window = 3;
  /// Consecutive clean polls before recovering one rung.
  std::size_t clean_window = 5;
  /// Fraction of the aggregate state-byte budget that counts as memory
  /// pressure (only meaningful when the overload policy sets a budget).
  double memory_pressure = 0.9;
  /// RETA sink fraction added per escalation once at the kSink rung.
  double sink_step = 0.25;
  /// Ceiling on the controller-driven sink fraction.
  double max_sink_fraction = 0.9;
};

class RuntimeMonitor {
 public:
  explicit RuntimeMonitor(Runtime& runtime, ControlConfig control = {})
      : runtime_(&runtime), control_(control) {}

  /// Take a snapshot at virtual time `now_ns`. Returns the snapshot and
  /// appends it to the history. Reads only atomics when the runtime has
  /// a metric registry (telemetry or overload control enabled), so it
  /// is safe beside run_threaded() workers; without a registry it reads
  /// the pipelines directly and must not race a live run.
  const MonitorSnapshot& poll(std::uint64_t now_ns);

  const std::vector<MonitorSnapshot>& history() const noexcept {
    return history_;
  }

  /// Sustained non-zero loss over the recent window? (The condition the
  /// paper flags as "consider a buffered writer / more cores / a
  /// narrower filter".)
  bool sustained_loss(std::size_t window = 3) const;

  /// Aggregate state bytes within `memory_pressure` of the policy's
  /// total budget (max_state_bytes x cores)? Always false with no
  /// budget configured.
  bool memory_pressure() const;

  /// Sustained sink backpressure: the analytics sink refused records
  /// (writer behind, every arena in flight) in each of the last
  /// `window` polls. Escalation-worthy for the same reason loss is —
  /// the archive is silently losing records until load sheds. Always
  /// false when the runtime has no sink.
  bool sink_pressure(std::size_t window = 3) const;

  /// Turn the recent window into structured advice. Pure: inspects the
  /// history and controller state, actuates nothing — callers without a
  /// ladder (or running advisory-only) can log it.
  Advice advise() const;

  /// poll() + advise() + actuate: writes the ladder level into the
  /// runtime's OverloadState and the sink fraction into the NIC RETA.
  /// Call from the dispatching thread (the RETA is not thread-safe
  /// against concurrent dispatch). With the policy's ladder disabled
  /// this degenerates to poll() + advise() — advisory only.
  const Advice& apply(std::uint64_t now_ns);

  /// Ladder position this controller has driven the runtime to.
  overload::DegradeLevel level() const noexcept { return level_; }
  /// Most recent apply() outcome.
  const Advice& last_advice() const noexcept { return last_advice_; }

  /// One-line operator-facing status from the latest snapshot.
  std::string status_line() const;

 private:
  double baseline_sink() const;
  double current_sink() const { return baseline_sink() + sink_boost_; }
  std::size_t clean_streak() const;

  Runtime* runtime_;
  ControlConfig control_;
  std::vector<MonitorSnapshot> history_;
  overload::DegradeLevel level_ = overload::DegradeLevel::kNormal;
  double sink_boost_ = 0.0;          // controller-added sink fraction
  std::size_t last_action_poll_ = 0; // history_.size() at the last action
  Advice last_advice_;
};

}  // namespace retina::core

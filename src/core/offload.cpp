#include "core/offload.hpp"

namespace retina::core {

namespace {
// Idle horizon for offload rules when the config leaves ttl_ns at 0:
// the connection-establishment timeout scale (5 s), well below the
// 5 min inactivity timeout so a TTL-evicted flow resumes software
// accounting long before conntrack would expire it.
constexpr std::uint64_t kDefaultTtlNs = 5'000'000'000ull;
}  // namespace

OffloadEngine::OffloadEngine(const RuntimeConfig::OffloadConfig& config,
                             nic::SimNic& nic,
                             std::vector<OffloadClient*> clients)
    : nic_(nic), clients_(std::move(clients)) {
  nic_.enable_offload(config.ttl_ns != 0 ? config.ttl_ns : kDefaultTtlNs,
                      config.capture_limit);
  cores_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    cores_.push_back(std::make_unique<CoreState>());
  }
}

bool OffloadEngine::request_install(std::size_t core,
                                    const OffloadRequest& req) {
  auto& cs = *cores_[core];
  UpMsg msg;
  msg.kind = UpMsg::Kind::kInstall;
  msg.req = req;
  if (!cs.up.push(std::move(msg))) {
    // Ring full: drop the request. The caller retries on the flow's
    // next software packet, so nothing is lost.
    return false;
  }
  cs.requested.inc();
  return true;
}

void OffloadEngine::poll_core(std::size_t core) {
  auto& cs = *cores_[core];
  DownMsg msg;
  while (cs.down.pop(msg)) {
    handle_down(core, msg);
  }
  // Seed requests whose barrier may have been reached since.
  for (std::size_t i = 0; i < cs.waiting.size();) {
    if (cs.consumed >= cs.waiting[i].barrier) {
      const DownMsg pending = cs.waiting[i];
      cs.waiting.erase(cs.waiting.begin() +
                       static_cast<std::ptrdiff_t>(i));
      answer_seed_request(core, pending);
    } else {
      ++i;
    }
  }
  // Retry worker->dispatch messages that hit a full ring.
  while (!cs.up_overflow.empty()) {
    UpMsg retry = std::move(cs.up_overflow.front());
    if (!cs.up.push(std::move(retry))) break;
    cs.up_overflow.erase(cs.up_overflow.begin());
  }
}

void OffloadEngine::handle_down(std::size_t core, DownMsg& msg) {
  auto& cs = *cores_[core];
  switch (msg.kind) {
    case DownMsg::Kind::kSeedRequest:
      if (cs.consumed >= msg.barrier) {
        answer_seed_request(core, msg);
      } else {
        cs.waiting.push_back(msg);
      }
      break;
    case DownMsg::Kind::kEvict:
      if (clients_[core]->offload_merge(msg.rec)) {
        cs.merges.inc();
      } else {
        UpMsg up;
        up.kind = UpMsg::Kind::kBounce;
        up.rec = msg.rec;
        cs.bounces.inc();
        push_up(core, std::move(up));
      }
      break;
    case DownMsg::Kind::kClearPending:
      clients_[core]->offload_clear_pending(msg.key);
      break;
  }
}

void OffloadEngine::answer_seed_request(std::size_t core,
                                        const DownMsg& msg) {
  UpMsg up;
  up.key = msg.key;
  nic::OffloadSeed seed;
  if (clients_[core]->offload_park(msg.key, seed)) {
    up.kind = UpMsg::Kind::kSeed;
    up.seed = seed;
  } else {
    up.kind = UpMsg::Kind::kSeedFail;
  }
  push_up(core, std::move(up));
}

void OffloadEngine::push_up(std::size_t core, UpMsg&& msg) {
  auto& cs = *cores_[core];
  if (!cs.up.push(std::move(msg))) {
    cs.up_overflow.push_back(msg);
  }
}

void OffloadEngine::poll_dispatch(std::uint64_t now_ns) {
  nic_.offload_age(now_ns);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    UpMsg msg;
    while (cores_[c]->up.pop(msg)) {
      handle_up(c, msg, now_ns);
    }
  }
  route_events();
}

void OffloadEngine::handle_up(std::size_t core, UpMsg& msg,
                              std::uint64_t now_ns) {
  auto& cs = *cores_[core];
  switch (msg.kind) {
    case UpMsg::Kind::kInstall: {
      const auto& req = msg.req;
      const std::uint32_t queue = route_queue(req.rss_hash);
      const bool routable = queue != nic::RedirectionTable::kSinkQueue;
      if (shutdown_ || !routable ||
          !nic_.offload_install(req.key, req.rss_hash,
                                req.from_first_is_orig, req.is_tcp,
                                req.action, now_ns)) {
        refused_.inc();
        DownMsg down;
        down.kind = DownMsg::Kind::kClearPending;
        down.key = req.key;
        // The requesting core owns the entry; if even this push fails
        // the pending mark sticks until the flow's next packet path
        // can't retry — harmless, the flow just stays in software.
        (void)cs.down.push(std::move(down));
        break;
      }
      DownMsg down;
      down.kind = DownMsg::Kind::kSeedRequest;
      down.key = req.key;
      down.barrier = nic_.queue_enqueued(queue);
      if (!cores_[queue]->down.push(std::move(down))) {
        // Can't reach the worker: tear the capture down. The abort
        // event routes a clear-pending on the next poll.
        nic_.offload_abort(req.key);
      }
      break;
    }
    case UpMsg::Kind::kSeed:
      if (!nic_.offload_seed(msg.key, msg.seed)) {
        // Rule vanished while the worker parked the entry (TTL abort
        // raced the handshake): unpark it.
        DownMsg down;
        down.kind = DownMsg::Kind::kClearPending;
        down.key = msg.key;
        (void)cs.down.push(std::move(down));
      }
      break;
    case UpMsg::Kind::kSeedFail:
      seed_failures_.inc();
      nic_.offload_abort(msg.key);
      break;
    case UpMsg::Kind::kBounce:
      route_evict(std::move(msg.rec));
      break;
  }
}

void OffloadEngine::route_events() {
  for (auto& rec : nic_.offload_take_events()) {
    if (rec.counted) {
      route_evict(std::move(rec));
    } else {
      // Aborted capture: just clear the pending mark wherever the flow
      // lives now; nothing to merge.
      const std::uint32_t queue = route_queue(rec.rss_hash);
      if (queue == nic::RedirectionTable::kSinkQueue) continue;
      DownMsg down;
      down.kind = DownMsg::Kind::kClearPending;
      down.key = rec.key;
      (void)cores_[queue]->down.push(std::move(down));
    }
  }
}

void OffloadEngine::route_evict(nic::OffloadEvictRecord&& rec) {
  if (rec.bounces >= kMaxBounces) {
    orphaned_.inc();
    orphans_.push_back(std::move(rec));
    return;
  }
  ++rec.bounces;
  const std::uint32_t queue = route_queue(rec.rss_hash);
  if (queue == nic::RedirectionTable::kSinkQueue) {
    orphaned_.inc();
    orphans_.push_back(std::move(rec));
    return;
  }
  DownMsg down;
  down.kind = DownMsg::Kind::kEvict;
  down.rec = rec;
  if (!cores_[queue]->down.push(std::move(down))) {
    // Never lose hardware counters: undeliverable records are applied
    // at settle() by probing every client.
    orphaned_.inc();
    orphans_.push_back(std::move(rec));
  }
}

std::uint32_t OffloadEngine::route_queue(std::uint32_t rss_hash) const {
  const auto& reta = nic_.reta();
  return reta.assignment(reta.bucket_of(rss_hash));
}

void OffloadEngine::shutdown_flush(std::uint64_t now_ns) {
  (void)now_ns;
  nic_.offload_flush_all();
  route_events();
}

void OffloadEngine::settle(std::uint64_t now_ns) {
  // Single-threaded by contract: workers have stopped, so this thread
  // may act as every core. Bounded ping-pong; each round either makes
  // progress or the system is quiet.
  for (int round = 0; round < 64; ++round) {
    poll_dispatch(now_ns);
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      poll_core(c);
    }
    bool quiet = true;
    for (const auto& cs : cores_) {
      if (!cs->up.empty() || !cs->down.empty() || !cs->waiting.empty() ||
          !cs->up_overflow.empty()) {
        quiet = false;
        break;
      }
    }
    if (quiet) break;
  }
  for (const auto& rec : orphans_) {
    for (auto* client : clients_) {
      if (client->offload_merge(rec)) break;
    }
  }
  orphans_.clear();
}

OffloadEngineStats OffloadEngine::stats() const {
  OffloadEngineStats s;
  for (const auto& cs : cores_) {
    s.installs_requested += cs->requested.load();
    s.merges += cs->merges.load();
    s.bounces += cs->bounces.load();
  }
  s.installs_refused = refused_.load();
  s.seed_failures = seed_failures_.load();
  s.orphaned = orphaned_.load();
  return s;
}

}  // namespace retina::core

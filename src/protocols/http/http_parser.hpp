// HTTP/1.x parser: request and response lines, headers, and body
// framing (Content-Length and chunked) so that keep-alive connections
// yield one Session per transaction. Bodies are skipped, not stored —
// the subscription data carries parsed metadata, matching what the
// paper's applications consume.
#pragma once

#include "protocols/parser.hpp"

namespace retina::protocols {

class HttpParser final : public ConnParser {
 public:
  const std::string& name() const override;
  ProbeResult probe(const stream::L4Pdu& pdu) const override;
  ParseResult parse(const stream::L4Pdu& pdu) override;
  std::vector<Session> take_sessions() override;
  std::vector<Session> drain_sessions() override;

  /// More transactions may follow on a keep-alive connection.
  conntrack::ConnState session_match_state() const override {
    return conntrack::ConnState::kParse;
  }
  conntrack::ConnState session_nomatch_state() const override {
    return conntrack::ConnState::kParse;
  }

 private:
  enum class Phase { kLine, kHeaders, kBody, kChunkSize, kChunkData };

  struct DirectionState {
    std::vector<std::uint8_t> buf;
    Phase phase = Phase::kLine;
    std::uint64_t body_remaining = 0;
    bool chunked = false;
    bool body_until_close = false;  // responses without length framing
  };

  void consume(DirectionState& dir, bool from_originator);
  /// Extract one CRLF-terminated line from dir.buf; false if incomplete.
  static bool take_line(DirectionState& dir, std::string& line);
  void handle_request_line(const std::string& line);
  void handle_response_line(const std::string& line);
  void handle_header(DirectionState& dir, const std::string& line,
                     bool from_originator);
  void headers_complete(DirectionState& dir, bool from_originator);
  void emit_transaction();

  DirectionState client_;
  DirectionState server_;
  HttpTransaction current_;
  bool request_started_ = false;
  std::size_t next_session_id_ = 0;
  std::vector<Session> completed_;
};

}  // namespace retina::protocols

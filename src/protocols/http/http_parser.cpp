#include "protocols/http/http_parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>

namespace retina::protocols {

namespace {

const std::string kName = "http";

const char* kMethods[] = {"GET",    "POST",  "HEAD",    "PUT",
                          "DELETE", "OPTIONS", "PATCH", "CONNECT",
                          "TRACE"};

bool starts_with_method(std::span<const std::uint8_t> payload) {
  for (const char* method : kMethods) {
    const std::size_t len = std::char_traits<char>::length(method);
    if (payload.size() < len + 1) continue;
    if (std::equal(method, method + len, payload.begin()) &&
        payload[len] == ' ') {
      return true;
    }
  }
  return false;
}

std::string lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

const std::string& HttpParser::name() const { return kName; }

ProbeResult HttpParser::probe(const stream::L4Pdu& pdu) const {
  const auto payload = pdu.payload;
  if (payload.empty()) return ProbeResult::kUnsure;
  if (payload.size() < 8) {
    // Could be the start of a method; check the prefix we have.
    for (const char* method : kMethods) {
      const std::size_t len = std::min(
          payload.size(), std::char_traits<char>::length(method));
      if (std::equal(payload.begin(), payload.begin() + len, method)) {
        return ProbeResult::kUnsure;
      }
    }
    return ProbeResult::kNo;
  }
  // A server-first byte stream ("HTTP/1.1 200 ...") also identifies HTTP.
  static const char kResponse[] = "HTTP/1.";
  if (std::equal(kResponse, kResponse + 7, payload.begin())) {
    return ProbeResult::kYes;
  }
  return starts_with_method(payload) ? ProbeResult::kYes : ProbeResult::kNo;
}

ParseResult HttpParser::parse(const stream::L4Pdu& pdu) {
  auto& dir = pdu.from_originator ? client_ : server_;
  dir.buf.insert(dir.buf.end(), pdu.payload.begin(), pdu.payload.end());
  consume(dir, pdu.from_originator);
  return ParseResult::kContinue;
}

bool HttpParser::take_line(DirectionState& dir, std::string& line) {
  const auto it = std::find(dir.buf.begin(), dir.buf.end(), '\n');
  if (it == dir.buf.end()) return false;
  const auto len = static_cast<std::size_t>(it - dir.buf.begin());
  line.assign(dir.buf.begin(), dir.buf.begin() + static_cast<std::ptrdiff_t>(len));
  if (!line.empty() && line.back() == '\r') line.pop_back();
  dir.buf.erase(dir.buf.begin(),
                dir.buf.begin() + static_cast<std::ptrdiff_t>(len) + 1);
  return true;
}

void HttpParser::consume(DirectionState& dir, bool from_originator) {
  std::string line;
  while (true) {
    switch (dir.phase) {
      case Phase::kLine:
        if (!take_line(dir, line)) return;
        if (line.empty()) continue;  // tolerate leading blank lines
        if (from_originator) {
          handle_request_line(line);
        } else {
          handle_response_line(line);
        }
        dir.phase = Phase::kHeaders;
        continue;

      case Phase::kHeaders:
        if (!take_line(dir, line)) return;
        if (line.empty()) {
          headers_complete(dir, from_originator);
          continue;
        }
        handle_header(dir, line, from_originator);
        continue;

      case Phase::kBody: {
        const std::uint64_t take =
            std::min<std::uint64_t>(dir.body_remaining, dir.buf.size());
        dir.buf.erase(dir.buf.begin(),
                      dir.buf.begin() + static_cast<std::ptrdiff_t>(take));
        dir.body_remaining -= take;
        if (dir.body_until_close) {
          dir.buf.clear();
          return;  // body runs until connection close
        }
        if (dir.body_remaining > 0) return;  // need more data
        dir.phase = Phase::kLine;
        continue;
      }

      case Phase::kChunkSize: {
        if (!take_line(dir, line)) return;
        if (line.empty()) continue;  // CRLF after previous chunk
        std::uint64_t size = 0;
        const auto semi = line.find(';');
        const std::string hex = trim(
            semi == std::string::npos ? line : line.substr(0, semi));
        auto [ptr, ec] =
            std::from_chars(hex.data(), hex.data() + hex.size(), size, 16);
        if (ec != std::errc() || ptr != hex.data() + hex.size()) {
          // Malformed chunk framing; give up on body tracking.
          dir.buf.clear();
          dir.phase = Phase::kLine;
          return;
        }
        if (size == 0) {
          dir.phase = Phase::kLine;  // final chunk (trailers treated as line noise)
          continue;
        }
        dir.body_remaining = size;
        dir.phase = Phase::kChunkData;
        continue;
      }

      case Phase::kChunkData: {
        const std::uint64_t take =
            std::min<std::uint64_t>(dir.body_remaining, dir.buf.size());
        dir.buf.erase(dir.buf.begin(),
                      dir.buf.begin() + static_cast<std::ptrdiff_t>(take));
        dir.body_remaining -= take;
        if (dir.body_remaining > 0) return;
        dir.phase = Phase::kChunkSize;
        continue;
      }
    }
  }
}

void HttpParser::handle_request_line(const std::string& line) {
  // METHOD SP URI SP VERSION
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  // A new request begins a new transaction; flush the previous one if
  // its response never completed (pipelining is approximated as
  // sequential transactions).
  if (request_started_) emit_transaction();

  current_ = HttpTransaction{};
  request_started_ = true;
  if (sp1 == std::string::npos) {
    current_.method = line;
    return;
  }
  current_.method = line.substr(0, sp1);
  if (sp2 == std::string::npos) {
    current_.uri = line.substr(sp1 + 1);
  } else {
    current_.uri = line.substr(sp1 + 1, sp2 - sp1 - 1);
    current_.version = line.substr(sp2 + 1);
  }
}

void HttpParser::handle_response_line(const std::string& line) {
  // VERSION SP STATUS SP REASON
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return;
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string status = sp2 == std::string::npos
                                 ? line.substr(sp1 + 1)
                                 : line.substr(sp1 + 1, sp2 - sp1 - 1);
  current_.has_response = true;
  if (const auto code = parse_u64(status)) {
    current_.status_code = static_cast<std::uint32_t>(*code);
  }
  if (sp2 != std::string::npos) current_.reason = line.substr(sp2 + 1);
}

void HttpParser::handle_header(DirectionState& dir, const std::string& line,
                               bool from_originator) {
  const auto colon = line.find(':');
  if (colon == std::string::npos) return;
  HttpHeader header;
  header.name = lower(trim(line.substr(0, colon)));
  header.value = trim(line.substr(colon + 1));

  if (header.name == "content-length") {
    if (const auto len = parse_u64(header.value)) {
      dir.body_remaining = *len;
      if (!from_originator) current_.response_content_length = *len;
    }
  } else if (header.name == "transfer-encoding" &&
             lower(header.value).find("chunked") != std::string::npos) {
    dir.chunked = true;
  } else if (from_originator && header.name == "host") {
    current_.host = header.value;
  } else if (from_originator && header.name == "user-agent") {
    current_.user_agent = header.value;
  }

  auto& headers =
      from_originator ? current_.request_headers : current_.response_headers;
  headers.push_back(std::move(header));
}

void HttpParser::headers_complete(DirectionState& dir, bool from_originator) {
  if (!from_originator) {
    // The response headers complete the transaction metadata.
    emit_transaction();
  }
  if (dir.chunked) {
    dir.chunked = false;
    dir.phase = Phase::kChunkSize;
    return;
  }
  if (dir.body_remaining > 0) {
    dir.phase = Phase::kBody;
    return;
  }
  if (!from_originator && current_.response_content_length == 0 &&
      current_.status_code >= 200 && current_.method != "HEAD" &&
      std::none_of(current_.response_headers.begin(),
                   current_.response_headers.end(), [](const HttpHeader& h) {
                     return h.name == "content-length" ||
                            h.name == "transfer-encoding";
                   })) {
    // No framing: body runs to connection close.
    dir.body_until_close = true;
    dir.phase = Phase::kBody;
    dir.body_remaining = 0;
    return;
  }
  dir.phase = Phase::kLine;
}

void HttpParser::emit_transaction() {
  if (!request_started_ && !current_.has_response) return;
  Session session;
  session.session_id = next_session_id_++;
  session.data = current_;
  completed_.push_back(std::move(session));
  // Keep current_ around for body framing fields; a new request line
  // resets it.
  request_started_ = false;
}

std::vector<Session> HttpParser::take_sessions() {
  return std::exchange(completed_, {});
}

std::vector<Session> HttpParser::drain_sessions() {
  if (request_started_) emit_transaction();
  return take_sessions();
}

std::unique_ptr<ConnParser> make_http_parser() {
  return std::make_unique<HttpParser>();
}

}  // namespace retina::protocols

#include "protocols/registry.hpp"

#include "protocols/quic/quic_parser.hpp"
#include "protocols/smtp/smtp_parser.hpp"

namespace retina::protocols {

void ParserRegistry::register_parser(const std::string& name,
                                     ParserFactory factory) {
  factories_[name] = std::move(factory);
}

bool ParserRegistry::has(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<ConnParser> ParserRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> ParserRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

void register_builtin_parsers(ParserRegistry& registry) {
  registry.register_parser("tls", make_tls_parser);
  registry.register_parser("http", make_http_parser);
  registry.register_parser("ssh", make_ssh_parser);
  registry.register_parser("dns", make_dns_parser);
  registry.register_parser("quic", make_quic_parser);
  registry.register_parser("smtp", make_smtp_parser);
}

const ParserRegistry& ParserRegistry::builtin() {
  static const ParserRegistry* instance = [] {
    auto* r = new ParserRegistry();
    register_builtin_parsers(*r);
    return r;
  }();
  return *instance;
}

}  // namespace retina::protocols

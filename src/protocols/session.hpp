// Application-layer session data (paper §3.2.2, L5–7 abstraction).
// A Session is one parsed protocol message exchange — a TLS handshake,
// an HTTP transaction, an SSH handshake, a DNS query/response — produced
// by a protocol module and handed to the session filter and then to the
// user callback. These are plain data structs: parsers own all the
// complexity, callbacks get value types they can keep.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace retina::protocols {

/// TLS versions as they appear on the wire (legacy record versions plus
/// the supported_versions extension value for 1.3).
enum class TlsVersion : std::uint16_t {
  kSsl30 = 0x0300,
  kTls10 = 0x0301,
  kTls11 = 0x0302,
  kTls12 = 0x0303,
  kTls13 = 0x0304,
};

struct TlsHandshake {
  // ClientHello
  std::string sni;
  std::uint16_t client_version = 0;
  std::array<std::uint8_t, 32> client_random{};
  std::vector<std::uint16_t> cipher_suites_offered;
  std::vector<std::string> alpn_offered;
  std::vector<std::uint16_t> supported_versions;

  // ServerHello (may be absent if the connection died mid-handshake)
  bool has_server_hello = false;
  std::uint16_t server_version = 0;
  std::array<std::uint8_t, 32> server_random{};
  std::uint16_t cipher_selected = 0;

  // Certificate chain metadata (TLS <= 1.2; encrypted in 1.3)
  std::size_t certificate_count = 0;
  std::size_t certificate_bytes = 0;
  std::string subject_cn;  // leaf certificate subject common name
  std::string issuer_cn;

  /// Negotiated version accounting for the supported_versions extension.
  std::uint16_t version() const noexcept;
  /// IANA name of the selected cipher suite ("TLS_AES_128_GCM_SHA256"...);
  /// hex string for unknown code points.
  std::string cipher_name() const;
};

struct HttpHeader {
  std::string name;   // lower-cased
  std::string value;
};

struct HttpTransaction {
  // Request
  std::string method;
  std::string uri;
  std::string version;  // "HTTP/1.1"
  std::string host;
  std::string user_agent;
  std::vector<HttpHeader> request_headers;

  // Response (absent for one-sided captures)
  bool has_response = false;
  std::uint32_t status_code = 0;
  std::string reason;
  std::vector<HttpHeader> response_headers;
  std::uint64_t response_content_length = 0;
};

struct SshHandshake {
  std::string client_banner;  // "SSH-2.0-OpenSSH_8.9"
  std::string server_banner;
  std::vector<std::string> kex_algorithms;
  std::vector<std::string> host_key_algorithms;
};

struct DnsQuestion {
  std::string qname;
  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t rcode = 0;
  std::vector<DnsQuestion> questions;
  std::uint16_t answer_count = 0;
};

struct SmtpEnvelope {
  std::string greeting;   // server 220 banner
  std::string helo;       // HELO/EHLO argument
  std::string mail_from;
  std::vector<std::string> rcpt_to;
  bool starttls = false;  // connection upgraded to TLS
};

struct QuicHandshake {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> dcid;
  std::vector<std::uint8_t> scid;
  std::uint64_t initial_packets = 0;
};

/// A parsed application-layer session. `proto_id` is the registry id of
/// the protocol module that produced it (see protocols/registry.hpp).
struct Session {
  using Data = std::variant<std::monostate, TlsHandshake, HttpTransaction,
                            SshHandshake, DnsMessage, QuicHandshake,
                            SmtpEnvelope>;

  std::size_t session_id = 0;  // per-connection ordinal
  Data data;

  template <typename T>
  const T* get() const noexcept {
    return std::get_if<T>(&data);
  }

  bool empty() const noexcept {
    return std::holds_alternative<std::monostate>(data);
  }

  /// Protocol module name ("tls", "http", ...); empty if monostate.
  std::string proto_name() const;
};

/// IANA cipher-suite code point to name, for the common suites seen in
/// real traffic; falls back to "0x%04x".
std::string tls_cipher_suite_name(std::uint16_t code);

}  // namespace retina::protocols

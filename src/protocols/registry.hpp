// Parser registry (the "Parser Registry" box in paper Fig. 2): maps
// protocol module names to parser factories. The runtime instantiates
// one parser per tracked connection for each protocol the subscription's
// filter or data type requires. Registering a new module here plus a
// ProtoDef in the filter field registry is all it takes to extend the
// framework with a new protocol (paper §3.3).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "protocols/parser.hpp"

namespace retina::protocols {

class ParserRegistry {
 public:
  /// Registry pre-populated with the built-in parsers (tls, http, ssh,
  /// dns).
  static const ParserRegistry& builtin();

  ParserRegistry() = default;

  void register_parser(const std::string& name, ParserFactory factory);
  bool has(const std::string& name) const;
  /// Instantiate a parser; returns nullptr for unknown names.
  std::unique_ptr<ConnParser> create(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, ParserFactory> factories_;
};

/// Factories for the built-in protocol parsers.
std::unique_ptr<ConnParser> make_tls_parser();
std::unique_ptr<ConnParser> make_http_parser();
std::unique_ptr<ConnParser> make_ssh_parser();
std::unique_ptr<ConnParser> make_dns_parser();
std::unique_ptr<ConnParser> make_quic_parser();
std::unique_ptr<ConnParser> make_smtp_parser();

void register_builtin_parsers(ParserRegistry& registry);

}  // namespace retina::protocols

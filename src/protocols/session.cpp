#include "protocols/session.hpp"

#include <cstdio>

namespace retina::protocols {

std::uint16_t TlsHandshake::version() const noexcept {
  // TLS 1.3 negotiation hides behind the supported_versions extension:
  // the ServerHello legacy version stays 0x0303.
  if (has_server_hello && server_version == 0x0303) {
    for (auto v : supported_versions) {
      if (v == 0x0304) return 0x0304;
    }
  }
  if (has_server_hello) return server_version;
  return client_version;
}

std::string TlsHandshake::cipher_name() const {
  return tls_cipher_suite_name(cipher_selected);
}

std::string Session::proto_name() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return ""; }
    std::string operator()(const TlsHandshake&) const { return "tls"; }
    std::string operator()(const HttpTransaction&) const { return "http"; }
    std::string operator()(const SshHandshake&) const { return "ssh"; }
    std::string operator()(const DnsMessage&) const { return "dns"; }
    std::string operator()(const QuicHandshake&) const { return "quic"; }
    std::string operator()(const SmtpEnvelope&) const { return "smtp"; }
  };
  return std::visit(Visitor{}, data);
}

std::string tls_cipher_suite_name(std::uint16_t code) {
  switch (code) {
    case 0x1301: return "TLS_AES_128_GCM_SHA256";
    case 0x1302: return "TLS_AES_256_GCM_SHA384";
    case 0x1303: return "TLS_CHACHA20_POLY1305_SHA256";
    case 0xc02b: return "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256";
    case 0xc02c: return "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384";
    case 0xc02f: return "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256";
    case 0xc030: return "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384";
    case 0xcca8: return "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256";
    case 0xcca9: return "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256";
    case 0x009c: return "TLS_RSA_WITH_AES_128_GCM_SHA256";
    case 0x009d: return "TLS_RSA_WITH_AES_256_GCM_SHA384";
    case 0x002f: return "TLS_RSA_WITH_AES_128_CBC_SHA";
    case 0x0035: return "TLS_RSA_WITH_AES_256_CBC_SHA";
    default: {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "0x%04x", code);
      return buf;
    }
  }
}

}  // namespace retina::protocols

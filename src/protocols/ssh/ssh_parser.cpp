#include "protocols/ssh/ssh_parser.hpp"

#include <algorithm>
#include <utility>

#include "util/bytes.hpp"

namespace retina::protocols {

namespace {

const std::string kName = "ssh";
constexpr std::uint8_t kMsgKexInit = 20;

std::vector<std::string> split_name_list(std::span<const std::uint8_t> data) {
  std::vector<std::string> out;
  std::string current;
  for (const auto byte : data) {
    if (byte == ',') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current += static_cast<char>(byte);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

const std::string& SshParser::name() const { return kName; }

ProbeResult SshParser::probe(const stream::L4Pdu& pdu) const {
  static const char kMagic[] = "SSH-";
  const auto payload = pdu.payload;
  if (payload.empty()) return ProbeResult::kUnsure;
  const std::size_t check = std::min<std::size_t>(payload.size(), 4);
  if (!std::equal(kMagic, kMagic + check, payload.begin())) {
    return ProbeResult::kNo;
  }
  return payload.size() >= 4 ? ProbeResult::kYes : ProbeResult::kUnsure;
}

ParseResult SshParser::parse(const stream::L4Pdu& pdu) {
  if (emitted_) return ParseResult::kDone;
  auto& dir = pdu.from_originator ? client_ : server_;
  dir.buf.insert(dir.buf.end(), pdu.payload.begin(), pdu.payload.end());
  consume(dir, pdu.from_originator);
  try_finish();
  return emitted_ ? ParseResult::kDone : ParseResult::kContinue;
}

void SshParser::consume(DirectionState& dir, bool from_originator) {
  if (!dir.banner_done) {
    const auto nl = std::find(dir.buf.begin(), dir.buf.end(), '\n');
    if (nl == dir.buf.end()) return;
    std::string banner(dir.buf.begin(), nl);
    if (!banner.empty() && banner.back() == '\r') banner.pop_back();
    dir.buf.erase(dir.buf.begin(), nl + 1);
    dir.banner_done = true;
    if (from_originator) {
      handshake_.client_banner = std::move(banner);
    } else {
      handshake_.server_banner = std::move(banner);
    }
  }

  // Binary packet protocol: uint32 length | byte padding_len | payload.
  while (dir.buf.size() >= 5) {
    const std::uint32_t packet_len = util::load_be32(dir.buf.data());
    if (packet_len < 1 || packet_len > (1u << 20)) {
      dir.buf.clear();  // framing lost (likely encrypted); stop
      return;
    }
    if (dir.buf.size() < 4 + packet_len) return;  // incomplete
    const std::uint8_t padding_len = dir.buf[4];
    const std::size_t payload_len =
        packet_len >= 1u + padding_len ? packet_len - 1 - padding_len : 0;
    const std::uint8_t* payload = dir.buf.data() + 5;

    if (from_originator && !kexinit_parsed_ && payload_len > 17 &&
        payload[0] == kMsgKexInit) {
      // KEXINIT: type(1) cookie(16) then name-lists, each u32-prefixed.
      util::ByteReader r({payload + 17, payload_len - 17});
      const std::uint32_t kex_len = r.be32();
      handshake_.kex_algorithms = split_name_list(r.bytes(kex_len));
      const std::uint32_t hostkey_len = r.be32();
      handshake_.host_key_algorithms = split_name_list(r.bytes(hostkey_len));
      if (r.ok()) kexinit_parsed_ = true;
    }
    dir.buf.erase(dir.buf.begin(),
                  dir.buf.begin() + 4 + static_cast<std::ptrdiff_t>(packet_len));
  }
}

void SshParser::try_finish() {
  if (emitted_) return;
  if (client_.banner_done && server_.banner_done && kexinit_parsed_) {
    emitted_ = true;
    Session session;
    session.session_id = next_session_id_++;
    session.data = handshake_;
    completed_.push_back(std::move(session));
  }
}

std::vector<Session> SshParser::take_sessions() {
  return std::exchange(completed_, {});
}

std::vector<Session> SshParser::drain_sessions() {
  if (!emitted_ && (client_.banner_done || server_.banner_done)) {
    emitted_ = true;
    Session session;
    session.session_id = next_session_id_++;
    session.data = handshake_;
    completed_.push_back(std::move(session));
  }
  return take_sessions();
}

std::unique_ptr<ConnParser> make_ssh_parser() {
  return std::make_unique<SshParser>();
}

}  // namespace retina::protocols

// SSH handshake parser: protocol version banners (RFC 4253 §4.2) from
// both sides plus the client's KEXINIT algorithm name-lists. Everything
// after key exchange is encrypted, so — like TLS — the connection stops
// being interesting once the handshake transcript is complete.
#pragma once

#include "protocols/parser.hpp"

namespace retina::protocols {

class SshParser final : public ConnParser {
 public:
  const std::string& name() const override;
  ProbeResult probe(const stream::L4Pdu& pdu) const override;
  ParseResult parse(const stream::L4Pdu& pdu) override;
  std::vector<Session> take_sessions() override;
  std::vector<Session> drain_sessions() override;

  conntrack::ConnState session_match_state() const override {
    return conntrack::ConnState::kDelete;
  }
  conntrack::ConnState session_nomatch_state() const override {
    return conntrack::ConnState::kDelete;
  }

 private:
  struct DirectionState {
    std::vector<std::uint8_t> buf;
    bool banner_done = false;
  };

  void consume(DirectionState& dir, bool from_originator);
  void try_finish();

  DirectionState client_;
  DirectionState server_;
  SshHandshake handshake_;
  bool kexinit_parsed_ = false;
  bool emitted_ = false;
  std::size_t next_session_id_ = 0;
  std::vector<Session> completed_;
};

}  // namespace retina::protocols

// QUIC (RFC 9000) initial-packet parser: long-header recognition,
// version extraction, and connection-ID metadata. QUIC payloads are
// encrypted from the first packet, so — like the paper's treatment of
// TLS — the interesting analyzable surface is the unencrypted header
// fields of the connection's first packets.
//
// This module also serves as the worked example of framework
// extensibility (paper §3.3 / Appendix A): a new protocol is a
// ConnParser implementation plus a ProtoDef with filterable fields.
#pragma once

#include "protocols/parser.hpp"

namespace retina::protocols {

class QuicParser final : public ConnParser {
 public:
  const std::string& name() const override;
  ProbeResult probe(const stream::L4Pdu& pdu) const override;
  ParseResult parse(const stream::L4Pdu& pdu) override;
  std::vector<Session> take_sessions() override;
  std::vector<Session> drain_sessions() override;

  conntrack::ConnState session_match_state() const override {
    return conntrack::ConnState::kDelete;  // everything after is opaque
  }
  conntrack::ConnState session_nomatch_state() const override {
    return conntrack::ConnState::kDelete;
  }

 private:
  QuicHandshake handshake_;
  bool emitted_ = false;
  std::size_t next_session_id_ = 0;
  std::vector<Session> completed_;
};

/// Parse one datagram as a QUIC long-header packet (nullopt otherwise).
std::optional<QuicHandshake> parse_quic_long_header(
    std::span<const std::uint8_t> datagram);

std::unique_ptr<ConnParser> make_quic_parser();

}  // namespace retina::protocols

#include "protocols/quic/quic_parser.hpp"

#include <utility>

#include "util/bytes.hpp"

namespace retina::protocols {

namespace {

const std::string kName = "quic";

bool plausible_version(std::uint32_t v) {
  // v1 (RFC 9000), v2 (RFC 9369), draft versions 0xff0000xx, and the
  // version-negotiation value 0.
  return v == 0x00000001 || v == 0x6b3343cf || (v >> 8) == 0xff0000 ||
         v == 0;
}

}  // namespace

std::optional<QuicHandshake> parse_quic_long_header(
    std::span<const std::uint8_t> datagram) {
  util::ByteReader r(datagram);
  const std::uint8_t first = r.u8();
  // Long header: fixed bit (0x40) and long-header bit (0x80) set.
  if ((first & 0xc0) != 0xc0) return std::nullopt;
  QuicHandshake hs;
  hs.version = r.be32();
  if (!plausible_version(hs.version)) return std::nullopt;
  const std::uint8_t dcid_len = r.u8();
  if (dcid_len > 20) return std::nullopt;
  const auto dcid = r.bytes(dcid_len);
  const std::uint8_t scid_len = r.u8();
  if (scid_len > 20) return std::nullopt;
  const auto scid = r.bytes(scid_len);
  if (!r.ok()) return std::nullopt;
  hs.dcid.assign(dcid.begin(), dcid.end());
  hs.scid.assign(scid.begin(), scid.end());
  hs.initial_packets = 1;
  return hs;
}

const std::string& QuicParser::name() const { return kName; }

ProbeResult QuicParser::probe(const stream::L4Pdu& pdu) const {
  if (pdu.payload.empty()) return ProbeResult::kUnsure;
  // Short-header packets (first bit clear) can't start a connection we
  // can identify; only long headers are probeable.
  if ((pdu.payload[0] & 0x80) == 0) return ProbeResult::kNo;
  return parse_quic_long_header(pdu.payload) ? ProbeResult::kYes
                                             : ProbeResult::kNo;
}

ParseResult QuicParser::parse(const stream::L4Pdu& pdu) {
  if (emitted_) return ParseResult::kDone;
  auto parsed = parse_quic_long_header(pdu.payload);
  if (!parsed) {
    // Short-header (1-RTT) packet: the handshake phase is over.
    if (handshake_.initial_packets > 0) {
      emitted_ = true;
      Session session;
      session.session_id = next_session_id_++;
      session.data = handshake_;
      completed_.push_back(std::move(session));
      return ParseResult::kDone;
    }
    return ParseResult::kError;
  }
  if (handshake_.initial_packets == 0) {
    handshake_ = *parsed;
  } else {
    ++handshake_.initial_packets;
    if (handshake_.scid.empty()) handshake_.scid = parsed->scid;
  }
  // After a few long-header packets the handshake metadata is complete.
  if (handshake_.initial_packets >= 4) {
    emitted_ = true;
    Session session;
    session.session_id = next_session_id_++;
    session.data = handshake_;
    completed_.push_back(std::move(session));
    return ParseResult::kDone;
  }
  return ParseResult::kContinue;
}

std::vector<Session> QuicParser::take_sessions() {
  return std::exchange(completed_, {});
}

std::vector<Session> QuicParser::drain_sessions() {
  if (!emitted_ && handshake_.initial_packets > 0) {
    emitted_ = true;
    Session session;
    session.session_id = next_session_id_++;
    session.data = handshake_;
    completed_.push_back(std::move(session));
  }
  return take_sessions();
}

std::unique_ptr<ConnParser> make_quic_parser() {
  return std::make_unique<QuicParser>();
}

}  // namespace retina::protocols

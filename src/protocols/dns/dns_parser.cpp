#include "protocols/dns/dns_parser.hpp"

#include <utility>

#include "util/bytes.hpp"

namespace retina::protocols {

namespace {
const std::string kName = "dns";
constexpr std::size_t kHeaderLen = 12;
}  // namespace

std::optional<DnsMessage> parse_dns_message(
    std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kHeaderLen) return std::nullopt;
  util::ByteReader r(datagram);

  DnsMessage msg;
  msg.id = r.be16();
  const std::uint16_t flags = r.be16();
  msg.is_response = (flags & 0x8000) != 0;
  msg.rcode = static_cast<std::uint8_t>(flags & 0x000f);
  const std::uint16_t qdcount = r.be16();
  msg.answer_count = r.be16();
  r.be16();  // nscount
  r.be16();  // arcount
  if (qdcount > 32) return std::nullopt;  // absurd question count

  for (std::uint16_t q = 0; q < qdcount; ++q) {
    DnsQuestion question;
    // Parse the QNAME label sequence; follow at most one compression
    // pointer (questions are rarely compressed, but be robust).
    std::size_t jumps = 0;
    bool jumped = false;
    std::size_t pos = r.offset();
    while (true) {
      if (pos >= datagram.size()) return std::nullopt;
      const std::uint8_t len = datagram[pos];
      if (len == 0) {
        if (!jumped) r.skip(pos + 1 - r.offset());
        break;
      }
      if ((len & 0xc0) == 0xc0) {
        if (pos + 1 >= datagram.size() || ++jumps > 4) return std::nullopt;
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | datagram[pos + 1];
        if (!jumped) r.skip(pos + 2 - r.offset());
        jumped = true;
        if (target >= datagram.size()) return std::nullopt;
        pos = target;
        continue;
      }
      if (pos + 1 + len > datagram.size()) return std::nullopt;
      if (!question.qname.empty()) question.qname += '.';
      question.qname.append(
          reinterpret_cast<const char*>(datagram.data() + pos + 1), len);
      pos += 1 + len;
    }
    question.qtype = r.be16();
    question.qclass = r.be16();
    if (!r.ok()) return std::nullopt;
    msg.questions.push_back(std::move(question));
  }
  return msg;
}

const std::string& DnsParser::name() const { return kName; }

ProbeResult DnsParser::probe(const stream::L4Pdu& pdu) const {
  // UDP: one datagram per PDU. Parse it outright — the most reliable
  // probe for a datagram protocol.
  return parse_dns_message(pdu.payload) ? ProbeResult::kYes
                                        : ProbeResult::kNo;
}

ParseResult DnsParser::parse(const stream::L4Pdu& pdu) {
  auto msg = parse_dns_message(pdu.payload);
  if (!msg) return ParseResult::kError;
  Session session;
  session.session_id = next_session_id_++;
  session.data = std::move(*msg);
  completed_.push_back(std::move(session));
  return ParseResult::kContinue;
}

std::vector<Session> DnsParser::take_sessions() {
  return std::exchange(completed_, {});
}

std::vector<Session> DnsParser::drain_sessions() { return take_sessions(); }

std::unique_ptr<ConnParser> make_dns_parser() {
  return std::make_unique<DnsParser>();
}

}  // namespace retina::protocols

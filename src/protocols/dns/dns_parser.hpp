// DNS-over-UDP parser: one Session per datagram (query or response).
// Parses the fixed header and question section with label decompression.
// Included both as a useful module and as the demonstration that the
// framework's extensibility (paper §3.3) spans non-TCP transports.
#pragma once

#include "protocols/parser.hpp"

namespace retina::protocols {

class DnsParser final : public ConnParser {
 public:
  const std::string& name() const override;
  ProbeResult probe(const stream::L4Pdu& pdu) const override;
  ParseResult parse(const stream::L4Pdu& pdu) override;
  std::vector<Session> take_sessions() override;
  std::vector<Session> drain_sessions() override;

  /// DNS flows keep producing messages; keep parsing either way.
  conntrack::ConnState session_match_state() const override {
    return conntrack::ConnState::kParse;
  }
  conntrack::ConnState session_nomatch_state() const override {
    return conntrack::ConnState::kParse;
  }

 private:
  std::size_t next_session_id_ = 0;
  std::vector<Session> completed_;
};

/// Parse one DNS message; nullopt if malformed. Exposed for tests and
/// the traffic generator's self-checks.
std::optional<DnsMessage> parse_dns_message(
    std::span<const std::uint8_t> datagram);

}  // namespace retina::protocols

// SMTP parser (the paper's §2 motivating example: "easily focusing on
// ... all SMTP sessions"). Parses the server greeting and the command/
// response envelope exchange — HELO/EHLO, MAIL FROM, RCPT TO, STARTTLS —
// emitting one Session per message envelope. Message bodies (DATA) are
// skipped, not stored.
#pragma once

#include "protocols/parser.hpp"

namespace retina::protocols {

class SmtpParser final : public ConnParser {
 public:
  const std::string& name() const override;
  ProbeResult probe(const stream::L4Pdu& pdu) const override;
  ParseResult parse(const stream::L4Pdu& pdu) override;
  std::vector<Session> take_sessions() override;
  std::vector<Session> drain_sessions() override;

  /// Envelopes keep coming on one connection; keep parsing either way.
  conntrack::ConnState session_match_state() const override {
    return conntrack::ConnState::kParse;
  }
  conntrack::ConnState session_nomatch_state() const override {
    return conntrack::ConnState::kParse;
  }

 private:
  void consume_client();
  void consume_server();
  void emit_envelope();

  std::vector<std::uint8_t> client_buf_;
  std::vector<std::uint8_t> server_buf_;
  bool in_data_ = false;       // between DATA and the dot terminator
  bool starttls_seen_ = false;
  SmtpEnvelope current_;
  bool envelope_started_ = false;
  std::size_t next_session_id_ = 0;
  std::vector<Session> completed_;
};

std::unique_ptr<ConnParser> make_smtp_parser();

}  // namespace retina::protocols

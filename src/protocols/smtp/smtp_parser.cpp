#include "protocols/smtp/smtp_parser.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

namespace retina::protocols {

namespace {

const std::string kName = "smtp";

/// Case-insensitive prefix test over a line.
bool starts_with_ci(const std::string& line, const char* prefix) {
  const std::size_t len = std::char_traits<char>::length(prefix);
  if (line.size() < len) return false;
  for (std::size_t i = 0; i < len; ++i) {
    if (std::toupper(static_cast<unsigned char>(line[i])) != prefix[i]) {
      return false;
    }
  }
  return true;
}

/// Extract the address inside <...>, or the remainder after the colon.
std::string path_argument(const std::string& line, std::size_t colon) {
  std::string arg = line.substr(colon + 1);
  const auto lt = arg.find('<');
  const auto gt = arg.find('>');
  if (lt != std::string::npos && gt != std::string::npos && gt > lt) {
    return arg.substr(lt + 1, gt - lt - 1);
  }
  // Trim whitespace.
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.front())))
    arg.erase(arg.begin());
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.back())))
    arg.pop_back();
  return arg;
}

/// Pop one CRLF/LF-terminated line; false if incomplete.
bool take_line(std::vector<std::uint8_t>& buf, std::string& line) {
  const auto it = std::find(buf.begin(), buf.end(), '\n');
  if (it == buf.end()) return false;
  line.assign(buf.begin(), it);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf.erase(buf.begin(), it + 1);
  return true;
}

}  // namespace

const std::string& SmtpParser::name() const { return kName; }

ProbeResult SmtpParser::probe(const stream::L4Pdu& pdu) const {
  // SMTP is server-first: "220 <domain> ...". Client-first data that
  // looks like EHLO also identifies (server greeting may be in flight).
  const auto payload = pdu.payload;
  if (payload.empty()) return ProbeResult::kUnsure;
  const std::string head(payload.begin(),
                         payload.begin() + std::min<std::size_t>(
                                               payload.size(), 8));
  if (!pdu.from_originator) {
    if (head.size() < 4) {
      return starts_with_ci(head, "220") ? ProbeResult::kUnsure
                                         : ProbeResult::kNo;
    }
    return (starts_with_ci(head, "220 ") || starts_with_ci(head, "220-"))
               ? ProbeResult::kYes
               : ProbeResult::kNo;
  }
  if (head.size() < 5) {
    return (starts_with_ci(head, "EHLO") || starts_with_ci(head, "HELO"))
               ? ProbeResult::kUnsure
               : ProbeResult::kNo;
  }
  return (starts_with_ci(head, "EHLO ") || starts_with_ci(head, "HELO "))
             ? ProbeResult::kYes
             : ProbeResult::kNo;
}

ParseResult SmtpParser::parse(const stream::L4Pdu& pdu) {
  auto& buf = pdu.from_originator ? client_buf_ : server_buf_;
  buf.insert(buf.end(), pdu.payload.begin(), pdu.payload.end());
  if (pdu.from_originator) {
    consume_client();
  } else {
    consume_server();
  }
  // After STARTTLS the stream is ciphertext; stop parsing.
  return starttls_seen_ ? ParseResult::kDone : ParseResult::kContinue;
}

void SmtpParser::consume_server() {
  std::string line;
  while (take_line(server_buf_, line)) {
    if (current_.greeting.empty() &&
        (starts_with_ci(line, "220 ") || starts_with_ci(line, "220-"))) {
      current_.greeting = line.substr(4);
    }
  }
}

void SmtpParser::consume_client() {
  std::string line;
  while (take_line(client_buf_, line)) {
    if (in_data_) {
      if (line == ".") {
        in_data_ = false;
        emit_envelope();  // message complete
      }
      continue;  // skip body lines
    }
    if (starts_with_ci(line, "EHLO ") || starts_with_ci(line, "HELO ")) {
      current_.helo = line.substr(5);
    } else if (starts_with_ci(line, "MAIL FROM")) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        envelope_started_ = true;
        current_.mail_from = path_argument(line, colon);
      }
    } else if (starts_with_ci(line, "RCPT TO")) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        current_.rcpt_to.push_back(path_argument(line, colon));
      }
    } else if (starts_with_ci(line, "DATA")) {
      in_data_ = true;
    } else if (starts_with_ci(line, "STARTTLS")) {
      current_.starttls = true;
      starttls_seen_ = true;
      emit_envelope();
    } else if (starts_with_ci(line, "QUIT")) {
      if (envelope_started_) emit_envelope();
    }
  }
}

void SmtpParser::emit_envelope() {
  if (!envelope_started_ && current_.helo.empty() && !current_.starttls) {
    return;
  }
  Session session;
  session.session_id = next_session_id_++;
  session.data = current_;
  completed_.push_back(std::move(session));
  // Envelope fields reset; the connection-scoped greeting/HELO persist.
  const auto greeting = current_.greeting;
  const auto helo = current_.helo;
  current_ = SmtpEnvelope{};
  current_.greeting = greeting;
  current_.helo = helo;
  envelope_started_ = false;
}

std::vector<Session> SmtpParser::take_sessions() {
  return std::exchange(completed_, {});
}

std::vector<Session> SmtpParser::drain_sessions() {
  if (envelope_started_) emit_envelope();
  return take_sessions();
}

std::unique_ptr<ConnParser> make_smtp_parser() {
  return std::make_unique<SmtpParser>();
}

}  // namespace retina::protocols

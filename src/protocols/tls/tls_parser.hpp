// TLS handshake parser. Parses real TLS record framing and handshake
// messages (ClientHello, ServerHello, Certificate) from reassembled
// byte-streams, handling records split across segments and handshake
// messages split across records. Parsing stops at the first
// ChangeCipherSpec / application-data record: Retina never decrypts, and
// once the handshake transcript is complete there is no reason to keep
// processing the connection (paper §5.2, Fig. 4b).
#pragma once

#include "protocols/parser.hpp"

namespace retina::protocols {

class TlsParser final : public ConnParser {
 public:
  const std::string& name() const override;
  ProbeResult probe(const stream::L4Pdu& pdu) const override;
  ParseResult parse(const stream::L4Pdu& pdu) override;
  std::vector<Session> take_sessions() override;
  std::vector<Session> drain_sessions() override;

  /// Nothing of interest follows the handshake: drop the connection
  /// whether or not the filter matched (Fig. 4b — both edges leave the
  /// state table; the subscription level may override to Track).
  conntrack::ConnState session_match_state() const override {
    return conntrack::ConnState::kDelete;
  }
  conntrack::ConnState session_nomatch_state() const override {
    return conntrack::ConnState::kDelete;
  }

 private:
  struct DirectionState {
    std::vector<std::uint8_t> record_buf;     // unconsumed record bytes
    std::vector<std::uint8_t> handshake_buf;  // reassembled hs messages
  };

  ParseResult consume_records(DirectionState& dir, bool from_originator);
  ParseResult consume_handshakes(DirectionState& dir, bool from_originator);
  void parse_client_hello(std::span<const std::uint8_t> body);
  void parse_server_hello(std::span<const std::uint8_t> body);
  void parse_certificate(std::span<const std::uint8_t> body);
  void finish_handshake();

  DirectionState client_;
  DirectionState server_;
  TlsHandshake handshake_;
  bool saw_client_hello_ = false;
  bool handshake_emitted_ = false;
  std::size_t next_session_id_ = 0;
  std::vector<Session> completed_;
};

}  // namespace retina::protocols

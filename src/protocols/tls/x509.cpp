#include "protocols/tls/x509.hpp"

#include <algorithm>

namespace retina::protocols {

namespace {

// ASN.1 tags used here.
constexpr std::uint8_t kTagInteger = 0x02;
constexpr std::uint8_t kTagBitString = 0x03;
constexpr std::uint8_t kTagOid = 0x06;
constexpr std::uint8_t kTagUtf8 = 0x0c;
constexpr std::uint8_t kTagPrintable = 0x13;
constexpr std::uint8_t kTagIa5 = 0x16;
constexpr std::uint8_t kTagUtcTime = 0x17;
constexpr std::uint8_t kTagSequence = 0x30;
constexpr std::uint8_t kTagSet = 0x31;
constexpr std::uint8_t kTagContext0 = 0xa0;

// OID 2.5.4.3 (commonName).
constexpr std::uint8_t kOidCn[] = {0x55, 0x04, 0x03};

struct Tlv {
  std::uint8_t tag = 0;
  std::span<const std::uint8_t> body{};
};

/// Read one TLV at the front of `data`; advances `data` past it.
std::optional<Tlv> read_tlv(std::span<const std::uint8_t>& data) {
  if (data.size() < 2) return std::nullopt;
  Tlv tlv;
  tlv.tag = data[0];
  std::size_t length = 0;
  std::size_t header = 2;
  const std::uint8_t len0 = data[1];
  if (len0 < 0x80) {
    length = len0;
  } else {
    const std::size_t len_bytes = len0 & 0x7f;
    if (len_bytes == 0 || len_bytes > 4 || data.size() < 2 + len_bytes) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < len_bytes; ++i) {
      length = (length << 8) | data[2 + i];
    }
    header = 2 + len_bytes;
  }
  if (data.size() - header < length) return std::nullopt;
  tlv.body = data.subspan(header, length);
  data = data.subspan(header + length);
  return tlv;
}

/// Extract the CN attribute from an X.501 Name (SEQUENCE OF SET OF
/// SEQUENCE { OID, value }).
std::string name_common_name(std::span<const std::uint8_t> name_body) {
  auto rdns = name_body;
  for (int guard = 0; guard < 32; ++guard) {
    if (rdns.empty()) break;
    const auto set = read_tlv(rdns);
    if (!set || set->tag != kTagSet) break;
    auto set_body = set->body;
    const auto attr = read_tlv(set_body);
    if (!attr || attr->tag != kTagSequence) continue;
    auto attr_body = attr->body;
    const auto oid = read_tlv(attr_body);
    if (!oid || oid->tag != kTagOid) continue;
    if (oid->body.size() == sizeof(kOidCn) &&
        std::equal(oid->body.begin(), oid->body.end(), kOidCn)) {
      const auto value = read_tlv(attr_body);
      if (value && (value->tag == kTagUtf8 || value->tag == kTagPrintable ||
                    value->tag == kTagIa5)) {
        return std::string(value->body.begin(), value->body.end());
      }
    }
  }
  return "";
}

void append_tlv(std::vector<std::uint8_t>& out, std::uint8_t tag,
                const std::vector<std::uint8_t>& body) {
  out.push_back(tag);
  const std::size_t len = body.size();
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
  } else if (len <= 0xff) {
    out.push_back(0x81);
    out.push_back(static_cast<std::uint8_t>(len));
  } else {
    out.push_back(0x82);
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(len));
  }
  out.insert(out.end(), body.begin(), body.end());
}

std::vector<std::uint8_t> build_name(const std::string& cn) {
  std::vector<std::uint8_t> attr;
  append_tlv(attr, kTagOid, {kOidCn, kOidCn + sizeof(kOidCn)});
  append_tlv(attr, kTagUtf8, {cn.begin(), cn.end()});
  std::vector<std::uint8_t> seq;
  append_tlv(seq, kTagSequence, attr);
  std::vector<std::uint8_t> set;
  append_tlv(set, kTagSet, seq);
  std::vector<std::uint8_t> name;
  append_tlv(name, kTagSequence, set);
  return name;
}

}  // namespace

std::optional<CertificateSummary> parse_certificate_summary(
    std::span<const std::uint8_t> der) {
  auto outer = der;
  const auto cert = read_tlv(outer);
  if (!cert || cert->tag != kTagSequence) return std::nullopt;

  auto cert_body = cert->body;
  const auto tbs = read_tlv(cert_body);
  if (!tbs || tbs->tag != kTagSequence) return std::nullopt;

  auto tbs_body = tbs->body;
  // Optional [0] version.
  {
    auto probe = tbs_body;
    const auto first = read_tlv(probe);
    if (first && first->tag == kTagContext0) tbs_body = probe;
  }
  const auto serial = read_tlv(tbs_body);
  if (!serial || serial->tag != kTagInteger) return std::nullopt;
  const auto sig_alg = read_tlv(tbs_body);
  if (!sig_alg || sig_alg->tag != kTagSequence) return std::nullopt;
  const auto issuer = read_tlv(tbs_body);
  if (!issuer || issuer->tag != kTagSequence) return std::nullopt;
  const auto validity = read_tlv(tbs_body);
  if (!validity || validity->tag != kTagSequence) return std::nullopt;
  const auto subject = read_tlv(tbs_body);
  if (!subject || subject->tag != kTagSequence) return std::nullopt;

  CertificateSummary summary;
  summary.der_bytes = der.size();
  summary.issuer_cn = name_common_name(issuer->body);
  summary.subject_cn = name_common_name(subject->body);
  return summary;
}

std::vector<std::uint8_t> build_minimal_certificate(
    const std::string& subject_cn, const std::string& issuer_cn,
    std::size_t padding_bytes) {
  std::vector<std::uint8_t> tbs;
  // [0] version v3
  {
    std::vector<std::uint8_t> v;
    append_tlv(v, kTagInteger, {0x02});
    std::vector<std::uint8_t> ctx;
    append_tlv(ctx, kTagContext0, v);
    tbs.insert(tbs.end(), ctx.begin(), ctx.end());
  }
  append_tlv(tbs, kTagInteger, {0x01, 0x23, 0x45, 0x67});  // serial
  {
    // signature algorithm: sha256WithRSAEncryption OID
    std::vector<std::uint8_t> oid;
    append_tlv(oid, kTagOid,
               {0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x0b});
    std::vector<std::uint8_t> alg;
    append_tlv(alg, kTagSequence, oid);
    tbs.insert(tbs.end(), alg.begin(), alg.end());
  }
  {
    const auto issuer = build_name(issuer_cn);
    tbs.insert(tbs.end(), issuer.begin(), issuer.end());
  }
  {
    std::vector<std::uint8_t> validity;
    const std::string not_before = "240101000000Z";
    const std::string not_after = "341231235959Z";
    append_tlv(validity, kTagUtcTime, {not_before.begin(), not_before.end()});
    append_tlv(validity, kTagUtcTime, {not_after.begin(), not_after.end()});
    std::vector<std::uint8_t> seq;
    append_tlv(seq, kTagSequence, validity);
    tbs.insert(tbs.end(), seq.begin(), seq.end());
  }
  {
    const auto subject = build_name(subject_cn);
    tbs.insert(tbs.end(), subject.begin(), subject.end());
  }
  {
    // subjectPublicKeyInfo stand-in: a BIT STRING of padding (models the
    // RSA modulus bulk that makes real certificates ~1 KB).
    std::vector<std::uint8_t> key(padding_bytes + 1, 0x5c);
    key[0] = 0x00;  // unused-bits count
    std::vector<std::uint8_t> spki;
    append_tlv(spki, kTagBitString, key);
    std::vector<std::uint8_t> seq;
    append_tlv(seq, kTagSequence, spki);
    tbs.insert(tbs.end(), seq.begin(), seq.end());
  }

  std::vector<std::uint8_t> cert_body;
  append_tlv(cert_body, kTagSequence, tbs);
  {
    std::vector<std::uint8_t> oid;
    append_tlv(oid, kTagOid,
               {0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x0b});
    std::vector<std::uint8_t> alg;
    append_tlv(alg, kTagSequence, oid);
    cert_body.insert(cert_body.end(), alg.begin(), alg.end());
  }
  {
    std::vector<std::uint8_t> sig(65, 0x77);
    sig[0] = 0x00;
    append_tlv(cert_body, kTagBitString, sig);
  }

  std::vector<std::uint8_t> out;
  append_tlv(out, kTagSequence, cert_body);
  return out;
}

}  // namespace retina::protocols

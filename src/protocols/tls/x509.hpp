// Minimal X.509/DER certificate inspection: enough ASN.1 traversal to
// pull the subject and issuer common names out of the leaf certificate
// of a TLS (<=1.2) handshake. Certificates are hostile input — every
// step is bounds-checked and depth-limited.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>
#include <string>

namespace retina::protocols {

struct CertificateSummary {
  std::string subject_cn;
  std::string issuer_cn;
  std::size_t der_bytes = 0;
};

/// Parse a DER-encoded X.509 certificate and extract the subject/issuer
/// common names. Returns nullopt for anything that does not follow the
/// Certificate ::= SEQUENCE { tbsCertificate ... } skeleton.
std::optional<CertificateSummary> parse_certificate_summary(
    std::span<const std::uint8_t> der);

/// Build a minimal, structurally valid DER certificate with the given
/// subject/issuer CNs (used by the traffic generator; parseable by
/// parse_certificate_summary and by the same traversal real tooling
/// applies to these fields).
std::vector<std::uint8_t> build_minimal_certificate(
    const std::string& subject_cn, const std::string& issuer_cn,
    std::size_t padding_bytes = 600);

}  // namespace retina::protocols

#include "protocols/tls/tls_parser.hpp"

#include <algorithm>
#include <utility>

#include "protocols/tls/x509.hpp"
#include "util/bytes.hpp"

namespace retina::protocols {

namespace {

// TLS record content types.
constexpr std::uint8_t kContentChangeCipherSpec = 20;
constexpr std::uint8_t kContentAlert = 21;
constexpr std::uint8_t kContentHandshake = 22;
constexpr std::uint8_t kContentApplicationData = 23;

// Handshake message types.
constexpr std::uint8_t kHsClientHello = 1;
constexpr std::uint8_t kHsServerHello = 2;
constexpr std::uint8_t kHsCertificate = 11;

// Extension ids.
constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtAlpn = 16;
constexpr std::uint16_t kExtSupportedVersions = 43;

constexpr std::size_t kRecordHeaderLen = 5;
constexpr std::size_t kMaxRecordLen = 1 << 14;

bool plausible_version(std::uint16_t v) {
  return v >= 0x0300 && v <= 0x0304;
}

const std::string kName = "tls";

}  // namespace

const std::string& TlsParser::name() const { return kName; }

ProbeResult TlsParser::probe(const stream::L4Pdu& pdu) const {
  const auto payload = pdu.payload;
  if (payload.empty()) return ProbeResult::kUnsure;
  if (payload.size() < kRecordHeaderLen) {
    // One byte is enough to rule TLS out if it isn't a handshake record.
    return payload[0] == kContentHandshake ? ProbeResult::kUnsure
                                           : ProbeResult::kNo;
  }
  if (payload[0] != kContentHandshake) return ProbeResult::kNo;
  const std::uint16_t version = util::load_be16(payload.data() + 1);
  if (!plausible_version(version)) return ProbeResult::kNo;
  const std::uint16_t len = util::load_be16(payload.data() + 3);
  if (len == 0 || len > kMaxRecordLen) return ProbeResult::kNo;
  if (payload.size() >= 6 && payload[5] != kHsClientHello &&
      payload[5] != kHsServerHello) {
    return ProbeResult::kNo;
  }
  return ProbeResult::kYes;
}

ParseResult TlsParser::parse(const stream::L4Pdu& pdu) {
  if (handshake_emitted_) return ParseResult::kDone;
  auto& dir = pdu.from_originator ? client_ : server_;
  dir.record_buf.insert(dir.record_buf.end(), pdu.payload.begin(),
                        pdu.payload.end());
  return consume_records(dir, pdu.from_originator);
}

ParseResult TlsParser::consume_records(DirectionState& dir,
                                       bool from_originator) {
  std::size_t offset = 0;
  ParseResult result = ParseResult::kContinue;

  while (dir.record_buf.size() - offset >= kRecordHeaderLen) {
    const std::uint8_t* hdr = dir.record_buf.data() + offset;
    const std::uint8_t content_type = hdr[0];
    const std::uint16_t version = util::load_be16(hdr + 1);
    const std::uint16_t len = util::load_be16(hdr + 3);
    if (!plausible_version(version) || len > kMaxRecordLen) {
      result = ParseResult::kError;
      break;
    }
    if (dir.record_buf.size() - offset - kRecordHeaderLen < len) {
      break;  // incomplete record; wait for more data
    }

    const std::uint8_t* body = hdr + kRecordHeaderLen;
    switch (content_type) {
      case kContentHandshake:
        dir.handshake_buf.insert(dir.handshake_buf.end(), body, body + len);
        result = consume_handshakes(dir, from_originator);
        break;
      case kContentChangeCipherSpec:
      case kContentApplicationData:
        // Encrypted data follows: the transcript we can see is complete.
        if (!from_originator || content_type == kContentApplicationData) {
          finish_handshake();
          result = ParseResult::kDone;
        }
        break;
      case kContentAlert:
        break;  // ignore alerts within the handshake
      default:
        result = ParseResult::kError;
        break;
    }
    offset += kRecordHeaderLen + len;
    if (result != ParseResult::kContinue) break;
  }

  dir.record_buf.erase(dir.record_buf.begin(),
                       dir.record_buf.begin() +
                           static_cast<std::ptrdiff_t>(
                               std::min(offset, dir.record_buf.size())));
  return result;
}

ParseResult TlsParser::consume_handshakes(DirectionState& dir,
                                          bool from_originator) {
  std::size_t offset = 0;
  while (dir.handshake_buf.size() - offset >= 4) {
    const std::uint8_t* hdr = dir.handshake_buf.data() + offset;
    const std::uint8_t msg_type = hdr[0];
    const std::uint32_t len = util::load_be24(hdr + 1);
    if (dir.handshake_buf.size() - offset - 4 < len) break;  // incomplete

    const std::span<const std::uint8_t> body{hdr + 4, len};
    if (from_originator && msg_type == kHsClientHello) {
      parse_client_hello(body);
    } else if (!from_originator && msg_type == kHsServerHello) {
      parse_server_hello(body);
    } else if (!from_originator && msg_type == kHsCertificate) {
      parse_certificate(body);
    }
    // Other messages (ServerKeyExchange, Finished, ...) advance the
    // transcript but carry nothing we extract.
    offset += 4 + len;
  }
  dir.handshake_buf.erase(dir.handshake_buf.begin(),
                          dir.handshake_buf.begin() +
                              static_cast<std::ptrdiff_t>(offset));
  return ParseResult::kContinue;
}

void TlsParser::parse_client_hello(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  handshake_.client_version = r.be16();
  const auto random = r.bytes(32);
  if (random.size() == 32) {
    std::copy(random.begin(), random.end(), handshake_.client_random.begin());
  }
  const std::uint8_t session_id_len = r.u8();
  r.skip(session_id_len);
  const std::uint16_t ciphers_len = r.be16();
  const auto ciphers = r.bytes(ciphers_len);
  for (std::size_t i = 0; i + 1 < ciphers.size(); i += 2) {
    handshake_.cipher_suites_offered.push_back(
        util::load_be16(ciphers.data() + i));
  }
  const std::uint8_t compression_len = r.u8();
  r.skip(compression_len);
  if (!r.ok()) return;
  saw_client_hello_ = true;
  if (r.remaining() < 2) return;  // no extensions (SSLv3-style hello)

  const std::uint16_t ext_total = r.be16();
  util::ByteReader exts(r.bytes(ext_total));
  while (exts.ok() && exts.remaining() >= 4) {
    const std::uint16_t ext_type = exts.be16();
    const std::uint16_t ext_len = exts.be16();
    util::ByteReader ext(exts.bytes(ext_len));
    if (!exts.ok()) break;
    switch (ext_type) {
      case kExtServerName: {
        const std::uint16_t list_len = ext.be16();
        util::ByteReader list(ext.bytes(list_len));
        while (list.ok() && list.remaining() >= 3) {
          const std::uint8_t name_type = list.u8();
          const std::uint16_t name_len = list.be16();
          const auto name = list.bytes(name_len);
          if (name_type == 0 && !name.empty() && handshake_.sni.empty()) {
            handshake_.sni.assign(name.begin(), name.end());
          }
        }
        break;
      }
      case kExtAlpn: {
        const std::uint16_t list_len = ext.be16();
        util::ByteReader list(ext.bytes(list_len));
        while (list.ok() && list.remaining() >= 1) {
          const std::uint8_t proto_len = list.u8();
          const auto proto = list.bytes(proto_len);
          if (!proto.empty()) {
            handshake_.alpn_offered.emplace_back(proto.begin(), proto.end());
          }
        }
        break;
      }
      case kExtSupportedVersions: {
        const std::uint8_t list_len = ext.u8();
        util::ByteReader list(ext.bytes(list_len));
        while (list.ok() && list.remaining() >= 2) {
          handshake_.supported_versions.push_back(list.be16());
        }
        break;
      }
      default:
        break;
    }
  }
}

void TlsParser::parse_server_hello(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  handshake_.server_version = r.be16();
  const auto random = r.bytes(32);
  if (random.size() == 32) {
    std::copy(random.begin(), random.end(), handshake_.server_random.begin());
  }
  const std::uint8_t session_id_len = r.u8();
  r.skip(session_id_len);
  handshake_.cipher_selected = r.be16();
  r.u8();  // compression method
  if (!r.ok()) return;
  handshake_.has_server_hello = true;

  if (r.remaining() >= 2) {
    const std::uint16_t ext_total = r.be16();
    util::ByteReader exts(r.bytes(ext_total));
    while (exts.ok() && exts.remaining() >= 4) {
      const std::uint16_t ext_type = exts.be16();
      const std::uint16_t ext_len = exts.be16();
      util::ByteReader ext(exts.bytes(ext_len));
      if (ext_type == kExtSupportedVersions && ext_len >= 2) {
        handshake_.supported_versions.push_back(ext.be16());
      }
    }
  }
}

void TlsParser::parse_certificate(std::span<const std::uint8_t> body) {
  util::ByteReader r(body);
  const std::uint32_t list_len = r.be24();
  util::ByteReader list(r.bytes(list_len));
  while (list.ok() && list.remaining() >= 3) {
    const std::uint32_t cert_len = list.be24();
    const auto der = list.bytes(cert_len);
    if (der.size() != cert_len) break;
    if (handshake_.certificate_count == 0) {
      // Leaf certificate: extract subject/issuer common names.
      if (const auto summary = parse_certificate_summary(der)) {
        handshake_.subject_cn = summary->subject_cn;
        handshake_.issuer_cn = summary->issuer_cn;
      }
    }
    ++handshake_.certificate_count;
    handshake_.certificate_bytes += cert_len;
  }
}

void TlsParser::finish_handshake() {
  if (handshake_emitted_ || !saw_client_hello_) return;
  handshake_emitted_ = true;
  Session session;
  session.session_id = next_session_id_++;
  session.data = handshake_;
  completed_.push_back(std::move(session));
}

std::vector<Session> TlsParser::take_sessions() {
  return std::exchange(completed_, {});
}

std::vector<Session> TlsParser::drain_sessions() {
  // Connection terminating: emit a partial transcript if we at least saw
  // a ClientHello (unanswered handshakes are still analyzable data).
  finish_handshake();
  return take_sessions();
}

std::unique_ptr<ConnParser> make_tls_parser() {
  return std::make_unique<TlsParser>();
}

}  // namespace retina::protocols

// ConnParser: the application-layer protocol module interface (the C++
// analogue of Retina's ConnParsable trait, paper Appendix A.1 / Fig. 10).
// A parser instance is attached to one connection once probing
// identifies its protocol; it consumes in-order L4 PDUs and produces
// Sessions. Its session_match_state / session_nomatch_state hints tell
// the pipeline what to do with the connection after the session filter
// runs (e.g. TLS: nothing interesting follows the handshake → Delete;
// HTTP: more transactions may follow → keep parsing).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "conntrack/conn_state.hpp"
#include "protocols/session.hpp"
#include "stream/l4_pdu.hpp"

namespace retina::protocols {

enum class ProbeResult {
  kUnsure,  // need more data
  kYes,     // this is my protocol
  kNo,      // definitely not my protocol
};

enum class ParseResult {
  kContinue,  // keep feeding PDUs
  kDone,      // parser finished for this connection (no more sessions)
  kError,     // malformed input; treat protocol state as dead
};

class ConnParser {
 public:
  virtual ~ConnParser() = default;

  /// Protocol module name; must match the name registered with the
  /// filter field registry ("tls", "http", ...).
  virtual const std::string& name() const = 0;

  /// Inspect an early PDU and vote on whether this connection speaks
  /// this protocol. Stateless with respect to parsing.
  virtual ProbeResult probe(const stream::L4Pdu& pdu) const = 0;

  /// Consume one in-order PDU. Completed sessions become available via
  /// take_sessions().
  virtual ParseResult parse(const stream::L4Pdu& pdu) = 0;

  /// Move out all sessions completed so far.
  virtual std::vector<Session> take_sessions() = 0;

  /// Flush any partially parsed session (connection terminating early;
  /// e.g. a ClientHello that never got a ServerHello).
  virtual std::vector<Session> drain_sessions() = 0;

  /// Default connection state after a session passes / fails the
  /// session filter (the subscription level can override; §5.2).
  virtual conntrack::ConnState session_match_state() const = 0;
  virtual conntrack::ConnState session_nomatch_state() const = 0;
};

using ParserFactory = std::function<std::unique_ptr<ConnParser>()>;

}  // namespace retina::protocols

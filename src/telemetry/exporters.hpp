// Exporters: turn registry snapshots and sampler series into
// machine-readable (Prometheus text exposition, JSON-lines) and
// human-readable (console table) forms.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"

namespace retina::telemetry {

/// Prometheus text exposition (version 0.0.4): HELP/TYPE comments, one
/// `family{core="N",...} value` line per per-core slot for counters and
/// gauges, and cumulative `_bucket{le="..."}`/`_sum`/`_count` lines for
/// histograms aggregated across cores.
std::string to_prometheus(const RegistrySnapshot& snapshot);

/// Append one hand-rolled counter metric (used for NIC port counters
/// that live outside the registry).
void append_prometheus_counter(std::string& out, const std::string& name,
                               const std::string& help, std::uint64_t value);

/// The full sampler series as JSON lines.
std::string samples_to_jsonl(const std::vector<TelemetrySample>& samples);

/// Live console table rendering.
std::string console_table_header();
std::string console_table_row(const TelemetrySample& sample);

}  // namespace retina::telemetry

#include "telemetry/sampler.hpp"

#include <cstdio>

#include "telemetry/exporters.hpp"

namespace retina::telemetry {

namespace {
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}
}  // namespace

std::string TelemetrySample::to_json() const {
  std::string out = "{";
  out += "\"t_ms\":" + format_double(t_ms);
  out += ",\"rx_packets\":" + std::to_string(rx_packets);
  out += ",\"rx_bytes\":" + std::to_string(rx_bytes);
  out += ",\"pps\":" + format_double(pps);
  out += ",\"gbps\":" + format_double(gbps);
  out += ",\"ring_dropped\":" + std::to_string(ring_dropped);
  out += ",\"drop_rate\":" + format_double(drop_rate);
  out += ",\"queue_depth\":[";
  for (std::size_t i = 0; i < queue_depth.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(queue_depth[i]);
  }
  out += "]";
  out += ",\"live_conns\":" + std::to_string(live_conns);
  out += ",\"state_bytes\":" + std::to_string(state_bytes);
  out += ",\"conns_created\":" + std::to_string(conns_created);
  out += ",\"sessions\":" + std::to_string(sessions);
  out += "}";
  return out;
}

void Sampler::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  start_time_ = std::chrono::steady_clock::now();
  take_sample();  // t=0 baseline
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  take_sample();  // final point: the series always has >= 2 samples
  started_ = false;
}

void Sampler::loop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    take_sample();
    lock.lock();
  }
}

void Sampler::take_sample() {
  TelemetrySample sample = capture_();
  sample.t_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start_time_)
                    .count();
  {
    std::lock_guard lock(mu_);
    if (!samples_.empty()) {
      const auto& prev = samples_.back();
      const double dt_s = (sample.t_ms - prev.t_ms) / 1e3;
      if (dt_s > 0) {
        const auto dp = sample.rx_packets - prev.rx_packets;
        const auto db = sample.rx_bytes - prev.rx_bytes;
        const auto dd = sample.ring_dropped - prev.ring_dropped;
        sample.pps = static_cast<double>(dp) / dt_s;
        sample.gbps = static_cast<double>(db) * 8.0 / 1e9 / dt_s;
        sample.drop_rate =
            dp + dd == 0
                ? 0.0
                : static_cast<double>(dd) / static_cast<double>(dp + dd);
      }
    }
    samples_.push_back(sample);
    if (console_ != nullptr && samples_.size() == 1) {
      *console_ << console_table_header() << "\n";
    }
  }
  if (jsonl_ != nullptr) *jsonl_ << sample.to_json() << "\n" << std::flush;
  if (console_ != nullptr) {
    *console_ << console_table_row(sample) << "\n" << std::flush;
  }
}

}  // namespace retina::telemetry

// Time-series sampler: a background thread that periodically captures a
// TelemetrySample from a user-supplied capture function (which reads
// only atomics — NIC port counters, registry gauges — so it is safe to
// call while workers run). The sampler turns cumulative counters into
// interval rates, always records one sample at start and one at stop
// (so even sub-interval runs produce a ≥2-point series), and can stream
// each sample to a JSON-lines sink and/or a live console table.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace retina::telemetry {

/// One point of the live time series. The capture function fills the
/// cumulative fields; the sampler computes `t_ms` and the rates.
struct TelemetrySample {
  double t_ms = 0.0;                 // wall time since sampler start
  std::uint64_t rx_packets = 0;      // cumulative NIC ingress
  std::uint64_t rx_bytes = 0;
  std::uint64_t ring_dropped = 0;    // cumulative rx-ring loss
  std::vector<std::size_t> queue_depth;  // current per-queue backlog
  std::uint64_t live_conns = 0;      // currently tracked connections
  std::uint64_t state_bytes = 0;     // approximate connection state
  std::uint64_t conns_created = 0;   // cumulative
  std::uint64_t sessions = 0;        // cumulative sessions parsed
  double pps = 0.0;                  // packets/s since previous sample
  double gbps = 0.0;                 // ingress Gbit/s since previous
  double drop_rate = 0.0;            // loss fraction in the interval

  /// One JSON object on a single line (JSON-lines exposition).
  std::string to_json() const;
};

class Sampler {
 public:
  using CaptureFn = std::function<TelemetrySample()>;

  Sampler(std::chrono::milliseconds interval, CaptureFn capture)
      : interval_(interval), capture_(std::move(capture)) {}
  ~Sampler() { stop(); }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stream each sample as a JSON line / console row as it is taken.
  /// Configure before start(); the sinks must outlive the sampler.
  void set_jsonl_sink(std::ostream* os) { jsonl_ = os; }
  void set_console_sink(std::ostream* os) { console_ = os; }

  void start();
  /// Idempotent: takes the final sample, then joins the thread.
  void stop();

  /// The captured series. Safe to read after stop().
  const std::vector<TelemetrySample>& samples() const { return samples_; }

 private:
  void loop();
  void take_sample();

  std::chrono::milliseconds interval_;
  CaptureFn capture_;
  std::ostream* jsonl_ = nullptr;
  std::ostream* console_ = nullptr;

  std::vector<TelemetrySample> samples_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace retina::telemetry

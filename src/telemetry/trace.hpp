// Connection-lifecycle span recording. Each worker core owns a bounded
// ring of fixed-size span records (single writer, overwrite-oldest) so
// tracing never allocates on the hot path and memory stays bounded no
// matter how long the run is. After the run, the recorder merges all
// rings into Chrome trace_event JSON loadable in chrome://tracing or
// Perfetto: instant events for lifecycle transitions (created → probed
// → parsed → delivered/expired) and one complete ("X") event spanning
// each connection's lifetime.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace retina::telemetry {

enum class SpanEvent : std::uint8_t {
  kConnCreated = 0,
  kConnProbed,      // protocol identified (detail = protocol)
  kSessionParsed,   // one application session emitted
  kDelivered,       // a callback fired for this connection
  kFilterDropped,   // discarded by a filter decision
  kExpired,         // removed by timeout
  kTerminated,      // natural FIN/RST close or shutdown
  kConnSpan,        // complete event: first packet -> termination
};

const char* span_event_name(SpanEvent event);

struct SpanRecord {
  SpanEvent event = SpanEvent::kConnCreated;
  std::uint32_t tid = 0;          // core index
  std::uint64_t id = 0;           // connection identity (five-tuple hash)
  std::uint64_t ts_ns = 0;        // virtual (trace) time
  std::uint64_t dur_ns = 0;       // kConnSpan only
  /// Subscription index the event is attributable to; -1 when the event
  /// concerns the whole connection (or the run has one subscription).
  /// Makes per-subscription activity separable in multi-subscription
  /// Chrome traces.
  std::int32_t sub = -1;
  std::array<char, 16> detail{};  // e.g. application protocol
};

/// Single-writer bounded ring of spans. The owning worker records;
/// readers may only iterate after the worker is done (join barrier).
class SpanRing {
 public:
  SpanRing() = default;
  SpanRing(std::size_t capacity, std::uint32_t tid)
      : slots_(capacity), tid_(tid) {}

  void record(SpanEvent event, std::uint64_t id, std::uint64_t ts_ns,
              std::uint64_t dur_ns = 0, const char* detail = nullptr,
              std::int32_t sub = -1) {
    if (slots_.empty()) return;
    SpanRecord& slot = slots_[next_ % slots_.size()];
    slot.event = event;
    slot.tid = tid_;
    slot.id = id;
    slot.ts_ns = ts_ns;
    slot.dur_ns = dur_ns;
    slot.sub = sub;
    slot.detail.fill('\0');
    if (detail != nullptr) {
      std::strncpy(slot.detail.data(), detail, slot.detail.size() - 1);
    }
    ++next_;
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Spans currently held (<= capacity).
  std::size_t size() const noexcept { return std::min(next_, slots_.size()); }
  /// Total spans ever recorded (including overwritten ones).
  std::uint64_t recorded() const noexcept { return next_; }

  /// Oldest-first copy of the held spans.
  std::vector<SpanRecord> drain() const;

 private:
  std::vector<SpanRecord> slots_;
  std::size_t next_ = 0;  // monotonic write index
  std::uint32_t tid_ = 0;
};

/// One ring per core plus the merge/export step.
class SpanRecorder {
 public:
  SpanRecorder(std::size_t cores, std::size_t capacity_per_core);

  SpanRing& ring(std::size_t core) { return *rings_[core]; }
  std::size_t cores() const noexcept { return rings_.size(); }

  /// All spans from all rings, sorted by timestamp.
  std::vector<SpanRecord> merged() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), timestamps in
  /// microseconds of virtual trace time.
  std::string to_chrome_json() const;

 private:
  std::vector<std::unique_ptr<SpanRing>> rings_;
};

}  // namespace retina::telemetry

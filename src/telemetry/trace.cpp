#include "telemetry/trace.hpp"

#include <algorithm>
#include <sstream>

namespace retina::telemetry {

const char* span_event_name(SpanEvent event) {
  switch (event) {
    case SpanEvent::kConnCreated: return "conn.created";
    case SpanEvent::kConnProbed: return "conn.probed";
    case SpanEvent::kSessionParsed: return "conn.session";
    case SpanEvent::kDelivered: return "conn.delivered";
    case SpanEvent::kFilterDropped: return "conn.filter_dropped";
    case SpanEvent::kExpired: return "conn.expired";
    case SpanEvent::kTerminated: return "conn.terminated";
    case SpanEvent::kConnSpan: return "conn";
  }
  return "?";
}

std::vector<SpanRecord> SpanRing::drain() const {
  std::vector<SpanRecord> out;
  const std::size_t held = size();
  out.reserve(held);
  const std::size_t start = next_ - held;  // oldest surviving span
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(slots_[(start + i) % slots_.size()]);
  }
  return out;
}

SpanRecorder::SpanRecorder(std::size_t cores, std::size_t capacity_per_core) {
  rings_.reserve(cores ? cores : 1);
  for (std::size_t core = 0; core < (cores ? cores : 1); ++core) {
    rings_.push_back(std::make_unique<SpanRing>(
        capacity_per_core, static_cast<std::uint32_t>(core)));
  }
}

std::vector<SpanRecord> SpanRecorder::merged() const {
  std::vector<SpanRecord> all;
  for (const auto& ring : rings_) {
    auto spans = ring->drain();
    all.insert(all.end(), spans.begin(), spans.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

std::string SpanRecorder::to_chrome_json() const {
  const auto spans = merged();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) os << ",";
    first = false;
    const double ts_us = static_cast<double>(span.ts_ns) / 1e3;
    os << "{\"name\":\"" << span_event_name(span.event)
       << "\",\"cat\":\"conn\",\"pid\":1,\"tid\":" << span.tid;
    if (span.event == SpanEvent::kConnSpan) {
      os << ",\"ph\":\"X\",\"ts\":" << ts_us
         << ",\"dur\":" << static_cast<double>(span.dur_ns) / 1e3;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us;
    }
    os << ",\"args\":{\"conn\":\"" << std::hex << span.id << std::dec
       << "\"";
    if (span.sub >= 0) {
      os << ",\"sub\":" << span.sub;
    }
    if (span.detail[0] != '\0') {
      os << ",\"detail\":\"" << span.detail.data() << "\"";
    }
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

}  // namespace retina::telemetry

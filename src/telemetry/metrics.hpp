// Live metric registry (observability layer, ntop-style continuous
// introspection). Worker cores write counters, gauges, and log2-bucketed
// latency histograms lock-free through per-core cache-line-padded slots;
// a reader thread (the sampler, or an exporter at shutdown) aggregates
// them with relaxed loads. Snapshots support delta semantics so a
// periodic reader can turn cumulative counters into rates.
//
// Writer contract: each (family, core) slot has exactly ONE writer
// thread — the worker owning that core. Registration is mutex-guarded
// and meant for setup time; families are stable in memory for the
// registry's lifetime, so hot paths hold raw slot pointers.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/atomics.hpp"

namespace retina::telemetry {

/// Log2 buckets: index 0 holds the value 0, index i >= 1 holds values
/// with bit-width i, i.e. [2^(i-1), 2^i - 1]. 64-bit values need
/// indices 0..64.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index for a value.
std::size_t histogram_bucket(std::uint64_t value) noexcept;
/// Inclusive upper bound of bucket `i` (Prometheus `le`).
std::uint64_t histogram_bucket_upper(std::size_t i) noexcept;

/// Single-writer log2 latency histogram. ~520 bytes; cache-line aligned
/// so adjacent cores' histograms never share a line.
class alignas(64) Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    buckets_[histogram_bucket(value)].inc();
    sum_.add(value);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load();
  }
  std::uint64_t sum() const noexcept { return sum_.load(); }

 private:
  std::array<util::RelaxedCell, kHistogramBuckets> buckets_;
  util::RelaxedCell sum_;
};

/// Read-only view of a histogram (or a delta of two), with percentile
/// queries answered by linear interpolation inside the winning bucket.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// p in [0, 100]. Returns an interpolated value estimate; always
  /// within the bounds of the bucket containing the rank.
  double percentile(double p) const noexcept;
  /// this - earlier, bucket-wise (counters are monotonic).
  HistogramSnapshot minus(const HistogramSnapshot& earlier) const;
};

/// What a family is, for exporters.
struct MetricId {
  std::string name;         // Prometheus-style, e.g. retina_packets_total
  std::string help;
  std::string label_key;    // optional extra label ("" = none)...
  std::string label_value;  // ...e.g. {stage="app_layer_parsing"}
};

namespace detail {
struct alignas(64) PaddedCell {
  util::RelaxedCell cell;
};
}  // namespace detail

/// One named counter (or gauge) with a padded slot per core.
class CounterFamily {
 public:
  CounterFamily(MetricId id, std::size_t cores) : id_(std::move(id)) {
    slots_ = std::make_unique<detail::PaddedCell[]>(cores);
    cores_ = cores;
  }
  util::RelaxedCell& at(std::size_t core) noexcept {
    return slots_[core].cell;
  }
  std::uint64_t core_value(std::size_t core) const noexcept {
    return slots_[core].cell.load();
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < cores_; ++c) sum += slots_[c].cell.load();
    return sum;
  }
  std::size_t cores() const noexcept { return cores_; }
  const MetricId& id() const noexcept { return id_; }

 private:
  MetricId id_;
  std::unique_ptr<detail::PaddedCell[]> slots_;
  std::size_t cores_ = 0;
};

/// One named histogram with a slot per core.
class HistogramFamily {
 public:
  HistogramFamily(MetricId id, std::size_t cores) : id_(std::move(id)) {
    slots_ = std::make_unique<Histogram[]>(cores);
    cores_ = cores;
  }
  Histogram& at(std::size_t core) noexcept { return slots_[core]; }
  /// Bucket-wise sum across cores.
  HistogramSnapshot aggregate() const;
  std::size_t cores() const noexcept { return cores_; }
  const MetricId& id() const noexcept { return id_; }

 private:
  MetricId id_;
  std::unique_ptr<Histogram[]> slots_;
  std::size_t cores_ = 0;
};

/// Point-in-time value of a counter/gauge family.
struct CounterSnapshot {
  MetricId id;
  bool is_gauge = false;
  std::vector<std::uint64_t> per_core;
  std::uint64_t total = 0;
};

struct HistogramFamilySnapshot {
  MetricId id;
  HistogramSnapshot agg;
};

/// A full registry capture. `delta()` subtracts counters and histograms
/// (monotonic) and keeps gauges at their current value.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;   // includes gauges
  std::vector<HistogramFamilySnapshot> histograms;

  RegistrySnapshot delta(const RegistrySnapshot& earlier) const;
  /// Total of the named family (label_value-qualified name), 0 if absent.
  std::uint64_t value(const std::string& name,
                      const std::string& label_value = "") const;
};

class MetricRegistry {
 public:
  explicit MetricRegistry(std::size_t cores) : cores_(cores ? cores : 1) {}

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register-or-get. Same (name, label_value) returns the same family.
  CounterFamily& counter(const std::string& name, const std::string& help,
                         const std::string& label_key = "",
                         const std::string& label_value = "");
  /// A gauge is a counter family whose slots are overwritten (set) and
  /// exported with TYPE gauge.
  CounterFamily& gauge(const std::string& name, const std::string& help,
                       const std::string& label_key = "",
                       const std::string& label_value = "");
  HistogramFamily& histogram(const std::string& name, const std::string& help,
                             const std::string& label_key = "",
                             const std::string& label_value = "");

  std::size_t cores() const noexcept { return cores_; }
  RegistrySnapshot snapshot() const;

 private:
  CounterFamily& counter_impl(const std::string& name,
                              const std::string& help,
                              const std::string& label_key,
                              const std::string& label_value, bool is_gauge);

  std::size_t cores_;
  mutable std::mutex mu_;  // registration + snapshot iteration
  std::deque<CounterFamily> counters_;
  std::deque<bool> counter_is_gauge_;
  std::deque<HistogramFamily> histograms_;
  std::map<std::string, CounterFamily*> counter_index_;
  std::map<std::string, HistogramFamily*> histogram_index_;
};

}  // namespace retina::telemetry

#include "telemetry/exporters.hpp"

#include <algorithm>
#include <cstdio>

namespace retina::telemetry {

namespace {

void append_header(std::string& out, const MetricId& id, const char* type) {
  out += "# HELP " + id.name + " " + id.help + "\n";
  out += "# TYPE " + id.name + " ";
  out += type;
  out += "\n";
}

std::string label_block(const MetricId& id, const std::string& extra = "") {
  std::string labels;
  if (!id.label_key.empty()) {
    labels += id.label_key + "=\"" + id.label_value + "\"";
  }
  if (!extra.empty()) {
    if (!labels.empty()) labels += ",";
    labels += extra;
  }
  return labels.empty() ? "" : "{" + labels + "}";
}

}  // namespace

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_header;
  for (const auto& counter : snapshot.counters) {
    // Families sharing a name (one per label value) get one HELP/TYPE.
    if (counter.id.name != last_header) {
      append_header(out, counter.id, counter.is_gauge ? "gauge" : "counter");
      last_header = counter.id.name;
    }
    for (std::size_t core = 0; core < counter.per_core.size(); ++core) {
      out += counter.id.name +
             label_block(counter.id,
                         "core=\"" + std::to_string(core) + "\"") +
             " " + std::to_string(counter.per_core[core]) + "\n";
    }
  }
  last_header.clear();
  for (const auto& hist : snapshot.histograms) {
    if (hist.id.name != last_header) {
      append_header(out, hist.id, "histogram");
      last_header = hist.id.name;
    }
    // Cumulative le buckets; trailing empty buckets collapse into +Inf.
    std::size_t top = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (hist.agg.buckets[i] != 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top; ++i) {
      cumulative += hist.agg.buckets[i];
      out += hist.id.name + "_bucket" +
             label_block(hist.id, "le=\"" +
                                      std::to_string(
                                          histogram_bucket_upper(i)) +
                                      "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += hist.id.name + "_bucket" + label_block(hist.id, "le=\"+Inf\"") +
           " " + std::to_string(hist.agg.count) + "\n";
    out += hist.id.name + "_sum" + label_block(hist.id) + " " +
           std::to_string(hist.agg.sum) + "\n";
    out += hist.id.name + "_count" + label_block(hist.id) + " " +
           std::to_string(hist.agg.count) + "\n";
  }
  return out;
}

void append_prometheus_counter(std::string& out, const std::string& name,
                               const std::string& help, std::uint64_t value) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " counter\n";
  out += name + " " + std::to_string(value) + "\n";
}

std::string samples_to_jsonl(const std::vector<TelemetrySample>& samples) {
  std::string out;
  for (const auto& sample : samples) {
    out += sample.to_json();
    out += "\n";
  }
  return out;
}

std::string console_table_header() {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%10s %12s %8s %10s %10s %10s %8s",
                "t_ms", "pps", "gbps", "conns", "state_kb", "drops",
                "maxq");
  return buf;
}

std::string console_table_row(const TelemetrySample& sample) {
  std::size_t max_depth = 0;
  for (const auto depth : sample.queue_depth) {
    max_depth = std::max(max_depth, depth);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%10.1f %12.0f %8.3f %10llu %10.1f %10llu %8zu",
                sample.t_ms, sample.pps, sample.gbps,
                static_cast<unsigned long long>(sample.live_conns),
                static_cast<double>(sample.state_bytes) / 1e3,
                static_cast<unsigned long long>(sample.ring_dropped),
                max_depth);
  return buf;
}

}  // namespace retina::telemetry

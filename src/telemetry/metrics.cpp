#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace retina::telemetry {

std::size_t histogram_bucket(std::uint64_t value) noexcept {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram_bucket_upper(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << i) - 1;
}

namespace {
std::uint64_t bucket_lower(std::size_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}
}  // namespace

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with interpolation inside the bucket: the value of
  // rank ceil(p/100 * count) lies in the first bucket whose cumulative
  // count reaches that rank.
  const double want = p / 100.0 * static_cast<double>(count);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::min(static_cast<double>(count), std::ceil(want))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      const auto lo = static_cast<double>(bucket_lower(i));
      const auto hi = static_cast<double>(histogram_bucket_upper(i));
      const double within = static_cast<double>(rank - cumulative) /
                            static_cast<double>(buckets[i]);
      return lo + (hi - lo) * within;
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(histogram_bucket_upper(kHistogramBuckets - 1));
}

HistogramSnapshot HistogramSnapshot::minus(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets[i] - earlier.buckets[i];
    out.count += out.buckets[i];
  }
  out.sum = sum - earlier.sum;
  return out;
}

HistogramSnapshot HistogramFamily::aggregate() const {
  HistogramSnapshot snap;
  for (std::size_t c = 0; c < cores_; ++c) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      const auto n = slots_[c].bucket(i);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum += slots_[c].sum();
  }
  return snap;
}

RegistrySnapshot RegistrySnapshot::delta(
    const RegistrySnapshot& earlier) const {
  RegistrySnapshot out = *this;
  for (auto& counter : out.counters) {
    if (counter.is_gauge) continue;  // gauges report current level
    for (const auto& prev : earlier.counters) {
      if (prev.id.name != counter.id.name ||
          prev.id.label_value != counter.id.label_value) {
        continue;
      }
      counter.total -= prev.total;
      for (std::size_t c = 0;
           c < std::min(counter.per_core.size(), prev.per_core.size()); ++c) {
        counter.per_core[c] -= prev.per_core[c];
      }
      break;
    }
  }
  for (auto& hist : out.histograms) {
    for (const auto& prev : earlier.histograms) {
      if (prev.id.name == hist.id.name &&
          prev.id.label_value == hist.id.label_value) {
        hist.agg = hist.agg.minus(prev.agg);
        break;
      }
    }
  }
  return out;
}

std::uint64_t RegistrySnapshot::value(const std::string& name,
                                      const std::string& label_value) const {
  for (const auto& counter : counters) {
    if (counter.id.name == name && counter.id.label_value == label_value) {
      return counter.total;
    }
  }
  return 0;
}

CounterFamily& MetricRegistry::counter(const std::string& name,
                                       const std::string& help,
                                       const std::string& label_key,
                                       const std::string& label_value) {
  return counter_impl(name, help, label_key, label_value, /*is_gauge=*/false);
}

CounterFamily& MetricRegistry::gauge(const std::string& name,
                                     const std::string& help,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  return counter_impl(name, help, label_key, label_value, /*is_gauge=*/true);
}

CounterFamily& MetricRegistry::counter_impl(const std::string& name,
                                            const std::string& help,
                                            const std::string& label_key,
                                            const std::string& label_value,
                                            bool is_gauge) {
  const std::string key = name + '\x1f' + label_value;
  std::lock_guard lock(mu_);
  if (const auto it = counter_index_.find(key);
      it != counter_index_.end()) {
    return *it->second;
  }
  counters_.emplace_back(MetricId{name, help, label_key, label_value},
                         cores_);
  counter_is_gauge_.push_back(is_gauge);
  counter_index_.emplace(key, &counters_.back());
  return counters_.back();
}

HistogramFamily& MetricRegistry::histogram(const std::string& name,
                                           const std::string& help,
                                           const std::string& label_key,
                                           const std::string& label_value) {
  const std::string key = name + '\x1f' + label_value;
  std::lock_guard lock(mu_);
  if (const auto it = histogram_index_.find(key);
      it != histogram_index_.end()) {
    return *it->second;
  }
  histograms_.emplace_back(MetricId{name, help, label_key, label_value},
                           cores_);
  histogram_index_.emplace(key, &histograms_.back());
  return histograms_.back();
}

RegistrySnapshot MetricRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  std::size_t i = 0;
  for (const auto& family : counters_) {
    CounterSnapshot cs;
    cs.id = family.id();
    cs.is_gauge = counter_is_gauge_[i++];
    cs.per_core.reserve(family.cores());
    for (std::size_t c = 0; c < family.cores(); ++c) {
      cs.per_core.push_back(family.core_value(c));
      cs.total += cs.per_core.back();
    }
    snap.counters.push_back(std::move(cs));
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& family : histograms_) {
    snap.histograms.push_back({family.id(), family.aggregate()});
  }
  return snap;
}

}  // namespace retina::telemetry

#include "rebalance/rebalancer.hpp"

#include <algorithm>
#include <thread>

namespace retina::rebalance {

Rebalancer::Rebalancer(const RebalanceConfig& config, nic::SimNic& nic,
                       std::vector<std::unique_ptr<core::Pipeline>>& pipelines,
                       telemetry::MetricRegistry* metrics)
    : config_(config), nic_(nic), pipelines_(pipelines) {
  const std::size_t n = pipelines_.size();
  cores_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<CoreState>());
  }
  mail_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mail_.push_back(std::make_unique<util::SpscRing<Parcel>>(
        config_.mailbox_capacity ? config_.mailbox_capacity : 1));
  }
  bucket_busy_ = std::make_unique<std::atomic<bool>[]>(nic_.reta().size());
  prev_hits_.assign(nic_.reta().size(), 0);
  if (metrics != nullptr) {
    imbalance_gauge_ =
        &metrics
             ->gauge("retina_rss_imbalance_milli",
                     "Max/mean per-queue load over the last rebalancer "
                     "window, x1000")
             .at(0);
    rewrites_cell_ =
        &metrics
             ->counter("retina_reta_rewrites_total",
                       "RETA buckets repointed by the rebalancer")
             .at(0);
  }
}

std::vector<std::uint64_t> Rebalancer::bucket_deltas() {
  std::vector<std::uint64_t> deltas(prev_hits_.size(), 0);
  for (std::size_t b = 0; b < prev_hits_.size(); ++b) {
    const auto hits = nic_.bucket_hits(b);
    deltas[b] = hits - prev_hits_[b];
    prev_hits_[b] = hits;
  }
  return deltas;
}

void Rebalancer::tick(std::uint64_t) {
  const auto deltas = bucket_deltas();
  const auto& reta = nic_.reta();
  const std::size_t queues = nic_.num_queues();
  std::vector<std::uint64_t> load(queues, 0);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < deltas.size(); ++b) {
    const auto queue = reta.assignment(b);
    if (queue == nic::RedirectionTable::kSinkQueue) continue;
    load[queue] += deltas[b];
    total += deltas[b];
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(queues);
  const auto max_load = *std::max_element(load.begin(), load.end());
  imbalance_ =
      (total == 0 || mean <= 0.0) ? 1.0 : static_cast<double>(max_load) / mean;
  if (imbalance_gauge_ != nullptr) {
    imbalance_gauge_->set(static_cast<std::uint64_t>(imbalance_ * 1000.0));
  }
  if (imbalance_ < config_.imbalance_threshold) {
    streak_ = 0;
    return;
  }
  if (++streak_ < std::max<std::size_t>(config_.hysteresis_ticks, 1)) return;
  streak_ = 0;
  rebalance_with(deltas);
}

std::size_t Rebalancer::rebalance_now() {
  return rebalance_with(bucket_deltas());
}

std::size_t Rebalancer::rebalance_with(
    const std::vector<std::uint64_t>& deltas) {
  const auto& reta = nic_.reta();
  const std::size_t queues = nic_.num_queues();
  if (queues < 2) return 0;
  std::vector<std::uint64_t> load(queues, 0);
  for (std::size_t b = 0; b < deltas.size(); ++b) {
    const auto queue = reta.assignment(b);
    if (queue == nic::RedirectionTable::kSinkQueue) continue;
    load[queue] += deltas[b];
  }
  // A sub-unity threshold is the test hook: move even when the move
  // does not strictly shrink the max (it lets single-bucket workloads
  // exercise migration).
  const bool forced = config_.imbalance_threshold < 1.0;
  std::size_t moves = 0;
  while (moves < config_.max_moves_per_tick) {
    const auto hot_it = std::max_element(load.begin(), load.end());
    const auto cold_it = std::min_element(load.begin(), load.end());
    const auto hot = static_cast<std::uint32_t>(hot_it - load.begin());
    const auto cold = static_cast<std::uint32_t>(cold_it - load.begin());
    if (hot == cold || *hot_it == 0) break;
    const std::uint64_t gap = *hot_it - *cold_it;
    // The hottest bucket on the hot queue that still improves the
    // balance: its load must fit the gap (strictly, unless forced —
    // d < gap guarantees max(hot - d, cold + d) < hot, so the greedy
    // loop cannot oscillate).
    std::size_t best = deltas.size();
    std::uint64_t best_load = 0;
    for (std::size_t b = 0; b < deltas.size(); ++b) {
      if (reta.assignment(b) != hot || deltas[b] == 0) continue;
      if (bucket_busy_[b].load(std::memory_order_acquire)) continue;
      if (deltas[b] > gap || (!forced && deltas[b] == gap)) continue;
      if (best == deltas.size() || deltas[b] > best_load) {
        best = b;
        best_load = deltas[b];
      }
    }
    if (best == deltas.size()) break;
    if (!migrate_bucket(static_cast<std::uint32_t>(best), hot, cold)) break;
    load[hot] -= best_load;
    load[cold] += best_load;
    ++moves;
  }
  return moves;
}

bool Rebalancer::migrate_bucket(std::uint32_t bucket, std::uint32_t src,
                                std::uint32_t dst) {
  auto& src_cmds = cores_[src]->commands;
  auto& dst_cmds = cores_[dst]->commands;
  // All-or-nothing: both command pushes and the RETA write must land
  // together, so check for space up front (sizes can only shrink under
  // us — the workers are the consumers).
  if (src_cmds.size() + 1 > src_cmds.capacity() ||
      dst_cmds.size() + 1 > dst_cmds.capacity()) {
    return false;
  }
  bucket_busy_[bucket].store(true, std::memory_order_release);
  // The destination must know to defer before the first rerouted packet
  // can reach it; its command is pushed first, and both precede the
  // RETA flip in this thread's program order (the data rings'
  // release/acquire pairs make that order visible to the workers).
  Command expect;
  expect.kind = Command::Kind::kExpect;
  expect.bucket = bucket;
  expect.peer = src;
  dst_cmds.push(std::move(expect));
  Command extract;
  extract.kind = Command::Kind::kExtract;
  extract.bucket = bucket;
  extract.peer = dst;
  extract.after_consumed = nic_.queue_enqueued(src);
  src_cmds.push(std::move(extract));
  nic_.update_reta(bucket, dst);
  ++reta_rewrites_;
  if (rewrites_cell_ != nullptr) rewrites_cell_->inc();
  return true;
}

void Rebalancer::poll_core(std::size_t core) {
  auto& st = *cores_[core];
  // Fast path: nothing pending for this core. Mail can only arrive
  // after a kExpect command, so the command ring check covers it.
  if (st.expecting.empty() && st.pending_extracts.empty() &&
      st.commands.empty()) {
    return;
  }
  drain_commands(core);
  apply_extracts(core, /*force=*/false);
  drain_mail(core);
}

void Rebalancer::drain_commands(std::size_t core) {
  auto& st = *cores_[core];
  Command cmd;
  while (st.commands.pop(cmd)) {
    if (cmd.kind == Command::Kind::kExpect) {
      st.expecting.emplace(cmd.bucket, PendingBucket{cmd.peer, {}});
    } else {
      st.pending_extracts.push_back(cmd);
    }
  }
}

void Rebalancer::apply_extracts(std::size_t core, bool force) {
  auto& st = *cores_[core];
  for (std::size_t i = 0; i < st.pending_extracts.size();) {
    const auto cmd = st.pending_extracts[i];
    if (!force && st.consumed < cmd.after_consumed) {
      ++i;
      continue;
    }
    // Every packet the moved bucket enqueued before the RETA flip has
    // now been consumed (FIFO), so the state is complete: lift the
    // bucket's connections out and mail them to the new owner.
    st.pending_extracts.erase(st.pending_extracts.begin() +
                              static_cast<std::ptrdiff_t>(i));
    auto moved =
        pipelines_[core]->extract_bucket(cmd.bucket, nic_.reta().size());
    for (auto& conn : moved) {
      Parcel parcel;
      parcel.bucket = cmd.bucket;
      parcel.conn = std::move(conn);
      send_parcel(core, cmd.peer, std::move(parcel));
    }
    Parcel end;
    end.end_marker = true;
    end.bucket = cmd.bucket;
    send_parcel(core, cmd.peer, std::move(end));
  }
}

void Rebalancer::send_parcel(std::size_t src, std::size_t dst,
                             Parcel&& parcel) {
  auto& ring = mailbox(src, dst);
  while (!ring.push(std::move(parcel))) {
    if (serial_) {
      // One thread owns every core: drain the destination ourselves or
      // spin forever.
      drain_commands(dst);
      drain_mail(dst);
    } else {
      // The destination worker drains its mail at every burst
      // boundary; give it a moment.
      std::this_thread::yield();
    }
  }
}

void Rebalancer::drain_mail(std::size_t core) {
  auto& st = *cores_[core];
  if (st.expecting.empty()) return;
  for (std::size_t src = 0; src < cores_.size(); ++src) {
    if (src == core) continue;
    auto& ring = mailbox(src, core);
    Parcel parcel;
    while (ring.pop(parcel)) {
      if (!parcel.end_marker) {
        pipelines_[core]->adopt(std::move(parcel.conn));
        continue;
      }
      const auto it = st.expecting.find(parcel.bucket);
      if (it == st.expecting.end()) continue;
      // Handoff complete: replay the packets that arrived while the
      // state was in flight, in arrival order, then let the dispatcher
      // move this bucket again.
      auto deferred = std::move(it->second.deferred);
      st.expecting.erase(it);
      bucket_busy_[parcel.bucket].store(false, std::memory_order_release);
      for (auto& mbuf : deferred) {
        pipelines_[core]->process(std::move(mbuf));
      }
    }
  }
}

std::size_t Rebalancer::filter_burst(std::size_t core, packet::Mbuf* burst,
                                     std::size_t n) {
  auto& st = *cores_[core];
  if (st.expecting.empty()) return n;
  const std::size_t reta_size = nic_.reta().size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto bucket =
        static_cast<std::uint32_t>(burst[i].rss_hash() % reta_size);
    const auto it = st.expecting.find(bucket);
    if (it != st.expecting.end()) {
      it->second.deferred.push_back(std::move(burst[i]));
      continue;
    }
    if (kept != i) burst[kept] = std::move(burst[i]);
    ++kept;
  }
  return kept;
}

void Rebalancer::quiesce() {
  // Teardown: the rx rings are empty, so every pre-flip packet has been
  // consumed and thresholds are moot — force the extracts through and
  // keep cycling until no core holds work (an extract on core A can
  // put mail, and thereby deferred-packet replay, on core B).
  bool again = true;
  while (again) {
    again = false;
    for (std::size_t core = 0; core < cores_.size(); ++core) {
      drain_commands(core);
      apply_extracts(core, /*force=*/true);
      drain_mail(core);
      auto& st = *cores_[core];
      if (!st.pending_extracts.empty() || !st.expecting.empty() ||
          !st.commands.empty()) {
        again = true;
      }
    }
  }
}

std::uint64_t Rebalancer::migrations() const {
  std::uint64_t total = 0;
  for (const auto& pipeline : pipelines_) {
    total += pipeline->stats().migrations_in;
  }
  return total;
}

}  // namespace retina::rebalance

// Adaptive RSS rebalancing with stateful flow migration. The paper's
// zero-loss results assume RSS spreads flows evenly across queues; an
// elephant-heavy mix breaks that assumption — one queue saturates while
// sibling cores idle, and the overload ladder starts shedding work the
// machine as a whole had capacity for. The Rebalancer closes that gap
// at runtime: it watches per-RETA-bucket load on the dispatching
// thread, and when max/mean queue load stays above a threshold it
// repoints the hottest buckets at the coldest queues.
//
// Moving a bucket must not reset the connections that live in it, and
// must not change any subscription's output. The migration protocol:
//
//   dispatch thread                 source worker        dest worker
//   ───────────────                 ─────────────        ───────────
//   read E = enqueued(src)
//   push kExpect(bucket) ──────────────────────────────► defer bucket's
//   push kExtract(bucket, E) ─────► (pending)            packets
//   flip RETA bucket → dst
//                                   consumed >= E:
//                                   extract conns,
//                                   mail them + end ───► adopt conns,
//                                   marker               then flush the
//                                                        deferred
//                                                        packets
//
// Why this is safe: (1) packets of the moved bucket enqueued before the
// RETA flip all sit in src's ring; once src has consumed E packets,
// FIFO order guarantees every one of them has been processed, so the
// extracted state is complete. (2) The command rings and the data rings
// are both release/acquire SPSC rings written by the dispatching
// thread: a worker that polls a post-flip packet observes every command
// pushed before the flip, so dest learns it must defer *before* the
// first rerouted packet can be processed, and per-connection packet
// order is preserved end to end. (3) Deferred packets are replayed in
// arrival order after the end marker, so the destination's callback
// stream for each connection is byte-identical to a run that never
// migrated. The golden differential suite asserts exactly this.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/pipeline.hpp"
#include "nic/port.hpp"
#include "rebalance/config.hpp"
#include "telemetry/metrics.hpp"
#include "util/spsc_ring.hpp"

namespace retina::rebalance {

class Rebalancer {
 public:
  /// `pipelines` must outlive the rebalancer and hold one pipeline per
  /// NIC queue; `metrics` may be null (no gauges exported).
  Rebalancer(const RebalanceConfig& config, nic::SimNic& nic,
             std::vector<std::unique_ptr<core::Pipeline>>& pipelines,
             telemetry::MetricRegistry* metrics);

  // ── dispatching-thread side ────────────────────────────────────────

  /// Periodic controller step: measure per-bucket load since the last
  /// tick, update the imbalance gauge, and — after `hysteresis_ticks`
  /// consecutive ticks above threshold — move buckets.
  void tick(std::uint64_t now_ns);

  /// Immediate rebalance using the load observed since the last tick
  /// (the monitor's rebalance-before-shed path). Returns buckets moved.
  std::size_t rebalance_now();

  /// max/mean per-queue load from the last measurement window.
  double imbalance() const noexcept { return imbalance_; }
  bool imbalanced() const noexcept {
    return imbalance_ >= config_.imbalance_threshold;
  }
  /// RETA buckets repointed so far.
  std::uint64_t reta_rewrites() const noexcept { return reta_rewrites_; }

  // ── worker side (each core calls with its own index only) ──────────

  /// Drain pending commands, extractions, and incoming migrations for
  /// `core`. Call at burst boundaries: after polling (so commands
  /// ordered before the polled packets are visible) and between bursts.
  void poll_core(std::size_t core);

  /// Partition a polled burst in place: packets of buckets currently
  /// mid-migration move into the core's defer list (replayed by
  /// poll_core once the state arrives); the rest are compacted to the
  /// front. Returns how many packets remain to process.
  std::size_t filter_burst(std::size_t core, packet::Mbuf* burst,
                           std::size_t n);

  /// Account `n` packets consumed from the core's rx ring (the extract
  /// threshold counts ring pops, processed or deferred).
  void note_consumed(std::size_t core, std::size_t n) {
    cores_[core]->consumed += n;
  }

  /// Serial mode: all cores run on one thread, so a producer facing a
  /// full mailbox must drain the destination inline instead of waiting
  /// for a worker that does not exist. run_threaded() switches this
  /// off for the duration of the run.
  void set_serial(bool serial) noexcept { serial_ = serial; }

  /// Drive every outstanding command, extraction, and mailbox to
  /// completion. Call at teardown (rings empty: after the serial drain,
  /// or after worker threads joined) so no connection is stranded
  /// mid-flight and finish() sees every table entry.
  void quiesce();

  /// Total connections adopted across all pipelines.
  std::uint64_t migrations() const;

 private:
  struct Command {
    enum class Kind : std::uint8_t { kExtract, kExpect };
    Kind kind = Kind::kExtract;
    std::uint32_t bucket = 0;
    /// kExtract: destination core; kExpect: source core.
    std::uint32_t peer = 0;
    /// kExtract: extract once the core's consumed count reaches this.
    std::uint64_t after_consumed = 0;
  };

  /// One mailbox message: a migrated connection, or the end marker
  /// closing a bucket's handoff.
  struct Parcel {
    bool end_marker = false;
    std::uint32_t bucket = 0;
    core::Pipeline::Migrated conn;
  };

  struct PendingBucket {
    std::uint32_t src = 0;
    std::vector<packet::Mbuf> deferred;  // arrival order
  };

  struct CoreState {
    /// dispatch → worker; commands for this core.
    util::SpscRing<Command> commands{256};
    // Everything below is owned by the worker (or the single thread in
    // serial mode).
    std::uint64_t consumed = 0;
    std::vector<Command> pending_extracts;
    std::map<std::uint32_t, PendingBucket> expecting;  // bucket → state
  };

  util::SpscRing<Parcel>& mailbox(std::size_t src, std::size_t dst) {
    return *mail_[src * cores_.size() + dst];
  }
  void drain_commands(std::size_t core);
  void apply_extracts(std::size_t core, bool force);
  void drain_mail(std::size_t core);
  void send_parcel(std::size_t src, std::size_t dst, Parcel&& parcel);
  bool migrate_bucket(std::uint32_t bucket, std::uint32_t src,
                      std::uint32_t dst);
  /// Per-bucket hits since the previous call (updates prev_hits_).
  std::vector<std::uint64_t> bucket_deltas();
  std::size_t rebalance_with(const std::vector<std::uint64_t>& deltas);

  RebalanceConfig config_;
  nic::SimNic& nic_;
  std::vector<std::unique_ptr<core::Pipeline>>& pipelines_;
  bool serial_ = true;

  std::vector<std::unique_ptr<CoreState>> cores_;
  /// (src, dst) migration mailboxes, row-major; src == dst unused.
  std::vector<std::unique_ptr<util::SpscRing<Parcel>>> mail_;
  /// One flag per RETA bucket: set by the dispatching thread when a
  /// migration starts, cleared by the destination worker at the end
  /// marker. Guards against re-moving a bucket whose state is in
  /// flight.
  std::unique_ptr<std::atomic<bool>[]> bucket_busy_;

  // Dispatching-thread controller state.
  std::vector<std::uint64_t> prev_hits_;
  double imbalance_ = 1.0;
  std::size_t streak_ = 0;
  std::uint64_t reta_rewrites_ = 0;
  util::RelaxedCell* imbalance_gauge_ = nullptr;  // milli-ratio
  util::RelaxedCell* rewrites_cell_ = nullptr;
};

}  // namespace retina::rebalance

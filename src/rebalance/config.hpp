// Configuration for adaptive RSS rebalancing (see
// rebalance/rebalancer.hpp). Lives in its own header so
// core/config.hpp can embed it without pulling the rebalancer (and
// through it the pipeline) into every translation unit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace retina::rebalance {

struct RebalanceConfig {
  bool enabled = false;
  /// Controller cadence in virtual (trace-clock) nanoseconds, evaluated
  /// on the dispatching thread so runs stay deterministic.
  std::uint64_t interval_ns = 10'000'000;  // 10 ms
  /// Rebalance when max/mean per-queue load over the last window
  /// exceeds this for `hysteresis_ticks` consecutive ticks. Values < 1
  /// mean "always rebalance" — useful to force migrations in tests.
  double imbalance_threshold = 1.5;
  std::size_t hysteresis_ticks = 2;
  /// At most this many RETA buckets move per rebalance decision.
  std::size_t max_moves_per_tick = 8;
  /// Capacity of each (source, destination) migration mailbox, in
  /// connections.
  std::size_t mailbox_capacity = 4096;
};

}  // namespace retina::rebalance

// Per-core connection table (paper §5.2). Each worker core owns one
// table — symmetric RSS guarantees both directions of a connection land
// on the same core, so tables need no cross-core synchronization and
// scale independently of offered load (Girondi et al.).
//
// Storage is slot-based: connections live in a stable-index vector with
// a free list, the five-tuple index maps canonical tuples to slots, and
// the timer wheel holds slot ids (made unique across reuse by a
// generation counter). Expiry is driven by the hierarchical timer wheel
// with lazy rescheduling: packet arrivals just bump `deadline_ns`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "conntrack/flat_index.hpp"
#include "conntrack/timer_wheel.hpp"
#include "packet/five_tuple.hpp"

namespace retina::conntrack {

struct TimeoutConfig {
  /// Connections that have not seen traffic in both directions are
  /// reaped after this long (default 5 s; reaps unanswered SYNs).
  std::uint64_t establish_ns = 5ull * 1'000'000'000;
  /// Established connections are reaped after this long without a
  /// packet (default 5 min).
  std::uint64_t inactivity_ns = 300ull * 1'000'000'000;
  /// Disable a timeout by setting it to 0 (used by the Fig. 8 ablation).
  bool establish_enabled() const noexcept { return establish_ns != 0; }
  bool inactivity_enabled() const noexcept { return inactivity_ns != 0; }
};

template <typename Conn>
class ConnTable {
 public:
  using ConnId = std::uint32_t;
  static constexpr ConnId kInvalid = 0xffffffffu;

  explicit ConnTable(TimeoutConfig timeouts = {},
                     TimerWheel::Config wheel_config = {})
      : timeouts_(timeouts), wheel_(wheel_config) {}

  std::size_t size() const noexcept { return index_.size(); }
  const TimeoutConfig& timeouts() const noexcept { return timeouts_; }
  /// Timer-wheel entries currently scheduled (diagnostics; stays 0 when
  /// all timeouts are disabled).
  std::size_t pending_timers() const noexcept { return wheel_.pending(); }

  /// Find an existing connection slot for a canonical tuple.
  ConnId find(const packet::FiveTuple& canonical_key) {
    const auto value = index_.find(canonical_key);
    return value == FlatIndex::kNotFound ? kInvalid : value;
  }

  /// find() with the raw tuple hash supplied by the caller. The burst
  /// path hashes each tuple exactly once in pass 1 and reuses the value
  /// for prefetching and here — FiveTuple::hash() is a ~37-byte serial
  /// FNV chain, the single most expensive scalar op on the hot path.
  ConnId find_hashed(const packet::FiveTuple& canonical_key,
                     std::uint64_t key_hash) {
    const auto value = index_.find_hashed(canonical_key, key_hash);
    return value == FlatIndex::kNotFound ? kInvalid : value;
  }

  /// True when advance(now_ns) would cross a tick boundary and do real
  /// expiry work. The burst path uses this to prove a whole burst is
  /// timer-quiescent and hoist the per-packet advance calls.
  bool timers_due(std::uint64_t now_ns) const noexcept {
    return wheel_.due(now_ns);
  }

  /// Burst pass-1 hook: warm the index probe line for the tuple hashing
  /// to `key_hash` (no lookup yet — just a software prefetch).
  void prefetch_hashed(std::uint64_t key_hash) const noexcept {
    index_.prefetch_hashed(key_hash);
  }

  /// Burst pass-1 hook, second sweep: with the index line warm, peek the
  /// key's home slot and prefetch the connection Slot it points at so
  /// pass 2 finds the connection state resident. Deliberately a hint,
  /// not a lookup — no probe walk, no key compare — so its cost stays a
  /// few cycles even when the guess is wrong.
  void prefetch_slot_hashed(std::uint64_t key_hash) const noexcept {
    const auto value = index_.peek_home_hashed(key_hash);
    if (value == FlatIndex::kNotFound || value >= slots_.size()) return;
#if defined(__GNUC__) || defined(__clang__)
    // One line, read-hinted: the hot fields (deadline, record counters)
    // share the slot's first line, and wider or write-hinted prefetches
    // measured slower here — extra fill traffic outweighed the saved
    // upgrade.
    __builtin_prefetch(static_cast<const void*>(&slots_[value]),
                       /*rw=*/0, /*locality=*/3);
#endif
  }

  /// Insert a new connection (caller checked find() first). Schedules
  /// the establishment timeout.
  ConnId insert(const packet::FiveTuple& canonical_key, Conn conn,
                std::uint64_t now_ns) {
    ConnId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      slots_[id].conn = std::move(conn);
      slots_[id].live = true;
      ++slots_[id].generation;
    } else {
      id = static_cast<ConnId>(slots_.size());
      slots_.push_back(Slot{std::move(conn), canonical_key, 0, 0, false, true});
    }
    auto& slot = slots_[id];
    slot.key = canonical_key;
    slot.established = false;
    slot.deadline_ns = now_ns + first_timeout();
    index_.insert(canonical_key, id);
    // With every timeout disabled (Fig. 8 "no timeouts" ablation) the
    // connection can never expire: scheduling it would park a
    // ~infinite deadline in the wheel's overflow list forever and
    // re-scan it on every top-level wrap. Skip the wheel entirely.
    if (timers_enabled()) {
      wheel_.schedule(wheel_token(id), slot.deadline_ns);
    }
    return id;
  }

  Conn& get(ConnId id) { return slots_[id].conn; }
  const Conn& get(ConnId id) const { return slots_[id].conn; }
  const packet::FiveTuple& key_of(ConnId id) const { return slots_[id].key; }
  bool is_established(ConnId id) const { return slots_[id].established; }

  /// Record packet activity: pushes the expiry deadline forward (lazy —
  /// no wheel operation).
  void touch(ConnId id, std::uint64_t now_ns) {
    auto& slot = slots_[id];
    slot.deadline_ns = now_ns + (slot.established
                                     ? inactivity_timeout()
                                     : first_timeout());
  }

  /// Deadline sentinel for parked connections: effectively "never",
  /// but small enough that `deadline + timeout` arithmetic can't wrap.
  static constexpr std::uint64_t kParkedDeadlineNs = ~0ull / 2;

  /// Suspend expiry for a connection whose packets are being handled
  /// elsewhere (hardware flow offload): the deadline moves to the
  /// parked sentinel and the wheel's lazy stale-entry check reschedules
  /// around it. Any later touch()/mark_established() resumes normal
  /// expiry; extract()/adopt() carry the parked deadline across a
  /// migration unchanged.
  void park(ConnId id) { slots_[id].deadline_ns = kParkedDeadlineNs; }
  bool parked(ConnId id) const {
    return slots_[id].deadline_ns == kParkedDeadlineNs;
  }

  /// Mark the connection established (traffic seen in both directions);
  /// switches it to the inactivity timeout.
  void mark_established(ConnId id, std::uint64_t now_ns) {
    auto& slot = slots_[id];
    if (!slot.established) {
      slot.established = true;
      slot.deadline_ns = now_ns + inactivity_timeout();
    }
  }

  /// A connection lifted out of the table for migration to another
  /// core: the moved state plus the timer metadata the destination
  /// needs to resume expiry exactly where this table left off.
  struct Extracted {
    Conn conn{};
    bool established = false;
    std::uint64_t deadline_ns = 0;
  };

  /// Remove the connection from this table and hand its state to the
  /// caller (flow migration). The stale wheel entry is ignored via the
  /// generation check when it fires, exactly as with remove().
  Extracted extract(ConnId id) {
    auto& slot = slots_[id];
    Extracted out{std::move(slot.conn), slot.established, slot.deadline_ns};
    slot.live = false;
    index_.erase(slot.key);
    slot.conn = Conn{};
    free_list_.push_back(id);
    return out;
  }

  /// Counterpart of extract() on the destination core: insert a
  /// migrated connection preserving its established flag and expiry
  /// deadline. (A plain insert() would restart the establishment
  /// timeout, making the migrated run expire connections differently
  /// from the static run.) A deadline already in the past fires on this
  /// table's next advance(), which the timer wheel supports.
  ConnId adopt(const packet::FiveTuple& canonical_key, Conn conn,
               bool established, std::uint64_t deadline_ns) {
    ConnId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      slots_[id].conn = std::move(conn);
      slots_[id].live = true;
      ++slots_[id].generation;
    } else {
      id = static_cast<ConnId>(slots_.size());
      slots_.push_back(Slot{std::move(conn), canonical_key, 0, 0, false, true});
    }
    auto& slot = slots_[id];
    slot.key = canonical_key;
    slot.established = established;
    slot.deadline_ns = deadline_ns;
    index_.insert(canonical_key, id);
    if (timers_enabled()) {
      wheel_.schedule(wheel_token(id), slot.deadline_ns);
    }
    return id;
  }

  /// Remove a connection immediately (filter mismatch, natural
  /// termination, or subscription satisfied). The stale wheel entry is
  /// ignored via the generation check when it fires.
  void remove(ConnId id) {
    auto& slot = slots_[id];
    if (!slot.live) return;
    slot.live = false;
    index_.erase(slot.key);
    slot.conn = Conn{};
    free_list_.push_back(id);
  }

  /// Advance virtual time; `on_expire(id, conn&)` is called for every
  /// connection whose deadline passed (the owner delivers/terminates it;
  /// the table removes it afterwards).
  template <typename F>
  void advance(std::uint64_t now_ns, F&& on_expire) {
    // Fast path: nothing can fire until the next tick boundary, and the
    // gate also skips the std::function the wheel's callback interface
    // would otherwise materialize on every packet.
    if (!wheel_.due(now_ns)) return;
    wheel_.advance(now_ns, [&](std::uint64_t token) {
      const ConnId id = static_cast<ConnId>(token & 0xffffffffu);
      const std::uint32_t generation =
          static_cast<std::uint32_t>(token >> 32);
      if (id >= slots_.size()) return;
      auto& slot = slots_[id];
      if (!slot.live || slot.generation != generation) return;  // stale
      if (slot.deadline_ns > now_ns) {
        // Activity moved the deadline; lazily re-schedule.
        wheel_.schedule(wheel_token(id), slot.deadline_ns);
        return;
      }
      on_expire(id, slot.conn);
      remove(id);
    });
  }

  /// Visit all live connections (diagnostics / drain at shutdown).
  template <typename F>
  void for_each(F&& fn) {
    for (ConnId id = 0; id < slots_.size(); ++id) {
      if (slots_[id].live) fn(id, slots_[id].conn);
    }
  }

  /// Approximate bytes used by table structures (Fig. 8 accounting);
  /// excludes per-connection dynamic allocations, which the owner
  /// reports separately.
  std::size_t approx_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           index_.capacity() *
               (sizeof(packet::FiveTuple) + sizeof(ConnId) + 16);
  }

  /// approx_bytes() as it would read after one more insert(), growth
  /// included: the slot vector doubles when full and the index doubles
  /// at its 87.5% load limit. Admission control checks this *projected*
  /// figure — checking the current one would let a doubling insert
  /// blow through a byte budget by 2x in a single step.
  std::size_t approx_bytes_after_insert() const {
    std::size_t slot_cap = slots_.capacity();
    if (free_list_.empty() && slots_.size() == slot_cap) {
      slot_cap = slot_cap ? slot_cap * 2 : 1;
    }
    std::size_t index_cap = index_.capacity();
    if ((index_.size() + 1) * 8 > index_cap * 7) index_cap *= 2;
    return slot_cap * sizeof(Slot) +
           index_cap * (sizeof(packet::FiveTuple) + sizeof(ConnId) + 16);
  }

 private:
  struct Slot {
    Conn conn{};
    packet::FiveTuple key{};
    std::uint64_t deadline_ns = 0;
    std::uint32_t generation = 0;
    bool established = false;
    bool live = false;
  };

  std::uint64_t wheel_token(ConnId id) const {
    return (static_cast<std::uint64_t>(slots_[id].generation) << 32) | id;
  }

  bool timers_enabled() const noexcept {
    return timeouts_.establish_enabled() || timeouts_.inactivity_enabled();
  }

  std::uint64_t first_timeout() const {
    if (timeouts_.establish_enabled()) return timeouts_.establish_ns;
    return inactivity_timeout();
  }
  std::uint64_t inactivity_timeout() const {
    if (timeouts_.inactivity_enabled()) return timeouts_.inactivity_ns;
    return ~0ull / 2;  // effectively never
  }

  TimeoutConfig timeouts_;
  TimerWheel wheel_;
  std::vector<Slot> slots_;
  std::vector<ConnId> free_list_;
  FlatIndex index_;
};

}  // namespace retina::conntrack

// Per-core connection table (paper §5.2). Each worker core owns one
// table — symmetric RSS guarantees both directions of a connection land
// on the same core, so tables need no cross-core synchronization and
// scale independently of offered load (Girondi et al.).
//
// Storage is slot-based: connections live in a stable-index vector with
// a free list, the five-tuple index maps canonical tuples to slots, and
// the timer wheel holds slot ids (made unique across reuse by a
// generation counter). Expiry is driven by the hierarchical timer wheel
// with lazy rescheduling: packet arrivals just bump `deadline_ns`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "conntrack/flat_index.hpp"
#include "conntrack/timer_wheel.hpp"
#include "packet/five_tuple.hpp"

namespace retina::conntrack {

struct TimeoutConfig {
  /// Connections that have not seen traffic in both directions are
  /// reaped after this long (default 5 s; reaps unanswered SYNs).
  std::uint64_t establish_ns = 5ull * 1'000'000'000;
  /// Established connections are reaped after this long without a
  /// packet (default 5 min).
  std::uint64_t inactivity_ns = 300ull * 1'000'000'000;
  /// Disable a timeout by setting it to 0 (used by the Fig. 8 ablation).
  bool establish_enabled() const noexcept { return establish_ns != 0; }
  bool inactivity_enabled() const noexcept { return inactivity_ns != 0; }
};

template <typename Conn>
class ConnTable {
 public:
  using ConnId = std::uint32_t;
  static constexpr ConnId kInvalid = 0xffffffffu;

  explicit ConnTable(TimeoutConfig timeouts = {},
                     TimerWheel::Config wheel_config = {})
      : timeouts_(timeouts), wheel_(wheel_config) {}

  std::size_t size() const noexcept { return index_.size(); }
  const TimeoutConfig& timeouts() const noexcept { return timeouts_; }

  /// Find an existing connection slot for a canonical tuple.
  ConnId find(const packet::FiveTuple& canonical_key) {
    const auto value = index_.find(canonical_key);
    return value == FlatIndex::kNotFound ? kInvalid : value;
  }

  /// Insert a new connection (caller checked find() first). Schedules
  /// the establishment timeout.
  ConnId insert(const packet::FiveTuple& canonical_key, Conn conn,
                std::uint64_t now_ns) {
    ConnId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      slots_[id].conn = std::move(conn);
      slots_[id].live = true;
      ++slots_[id].generation;
    } else {
      id = static_cast<ConnId>(slots_.size());
      slots_.push_back(Slot{std::move(conn), canonical_key, 0, 0, false, true});
    }
    auto& slot = slots_[id];
    slot.key = canonical_key;
    slot.established = false;
    slot.deadline_ns = now_ns + first_timeout();
    index_.insert(canonical_key, id);
    wheel_.schedule(wheel_token(id), slot.deadline_ns);
    return id;
  }

  Conn& get(ConnId id) { return slots_[id].conn; }
  const Conn& get(ConnId id) const { return slots_[id].conn; }
  const packet::FiveTuple& key_of(ConnId id) const { return slots_[id].key; }
  bool is_established(ConnId id) const { return slots_[id].established; }

  /// Record packet activity: pushes the expiry deadline forward (lazy —
  /// no wheel operation).
  void touch(ConnId id, std::uint64_t now_ns) {
    auto& slot = slots_[id];
    slot.deadline_ns = now_ns + (slot.established
                                     ? inactivity_timeout()
                                     : first_timeout());
  }

  /// Mark the connection established (traffic seen in both directions);
  /// switches it to the inactivity timeout.
  void mark_established(ConnId id, std::uint64_t now_ns) {
    auto& slot = slots_[id];
    if (!slot.established) {
      slot.established = true;
      slot.deadline_ns = now_ns + inactivity_timeout();
    }
  }

  /// Remove a connection immediately (filter mismatch, natural
  /// termination, or subscription satisfied). The stale wheel entry is
  /// ignored via the generation check when it fires.
  void remove(ConnId id) {
    auto& slot = slots_[id];
    if (!slot.live) return;
    slot.live = false;
    index_.erase(slot.key);
    slot.conn = Conn{};
    free_list_.push_back(id);
  }

  /// Advance virtual time; `on_expire(id, conn&)` is called for every
  /// connection whose deadline passed (the owner delivers/terminates it;
  /// the table removes it afterwards).
  template <typename F>
  void advance(std::uint64_t now_ns, F&& on_expire) {
    wheel_.advance(now_ns, [&](std::uint64_t token) {
      const ConnId id = static_cast<ConnId>(token & 0xffffffffu);
      const std::uint32_t generation =
          static_cast<std::uint32_t>(token >> 32);
      if (id >= slots_.size()) return;
      auto& slot = slots_[id];
      if (!slot.live || slot.generation != generation) return;  // stale
      if (slot.deadline_ns > now_ns) {
        // Activity moved the deadline; lazily re-schedule.
        wheel_.schedule(wheel_token(id), slot.deadline_ns);
        return;
      }
      on_expire(id, slot.conn);
      remove(id);
    });
  }

  /// Visit all live connections (diagnostics / drain at shutdown).
  template <typename F>
  void for_each(F&& fn) {
    for (ConnId id = 0; id < slots_.size(); ++id) {
      if (slots_[id].live) fn(id, slots_[id].conn);
    }
  }

  /// Approximate bytes used by table structures (Fig. 8 accounting);
  /// excludes per-connection dynamic allocations, which the owner
  /// reports separately.
  std::size_t approx_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           index_.capacity() *
               (sizeof(packet::FiveTuple) + sizeof(ConnId) + 16);
  }

 private:
  struct Slot {
    Conn conn{};
    packet::FiveTuple key{};
    std::uint64_t deadline_ns = 0;
    std::uint32_t generation = 0;
    bool established = false;
    bool live = false;
  };

  std::uint64_t wheel_token(ConnId id) const {
    return (static_cast<std::uint64_t>(slots_[id].generation) << 32) | id;
  }

  std::uint64_t first_timeout() const {
    if (timeouts_.establish_enabled()) return timeouts_.establish_ns;
    return inactivity_timeout();
  }
  std::uint64_t inactivity_timeout() const {
    if (timeouts_.inactivity_enabled()) return timeouts_.inactivity_ns;
    return ~0ull / 2;  // effectively never
  }

  TimeoutConfig timeouts_;
  TimerWheel wheel_;
  std::vector<Slot> slots_;
  std::vector<ConnId> free_list_;
  FlatIndex index_;
};

}  // namespace retina::conntrack

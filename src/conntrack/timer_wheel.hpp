// Hierarchical timer wheel (Varghese & Lauck) adapted for connection
// expiry (paper §5.2). Retina uses two logical timeouts — a short
// connection-establishment timeout (default 5 s) that reaps the ~65% of
// connections that are single unanswered SYNs, and a longer inactivity
// timeout (default 5 min) for established connections — both running on
// one wheel. Timer-wheel flow deletion scales better than per-insert
// heap maintenance (Girondi et al.), which is why the paper adopts it.
//
// Rescheduling is lazy: connections are scheduled once per deadline; on
// expiry the owner checks the connection's *actual* deadline and
// re-schedules if activity pushed it forward. This keeps the per-packet
// cost at a single store.
//
// Time is virtual (trace timestamps, nanoseconds), which makes the
// memory experiments (Fig. 8) deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace retina::conntrack {

class TimerWheel {
 public:
  struct Config {
    std::uint64_t tick_ns = 100'000'000;  // 100 ms resolution
    std::size_t slots_per_level = 256;
    std::size_t levels = 3;  // 256 ticks, 256^2, 256^3 => years of range
  };

  TimerWheel() : TimerWheel(Config{}) {}
  explicit TimerWheel(const Config& config);

  /// Schedule `id` to fire at `deadline_ns` (absolute virtual time).
  /// Deadlines in the past fire on the next advance.
  void schedule(std::uint64_t id, std::uint64_t deadline_ns);

  /// Advance virtual time to `now_ns`, invoking `expire(id)` for every
  /// timer whose slot has passed. The callback may call schedule()
  /// (lazy rescheduling).
  void advance(std::uint64_t now_ns,
               const std::function<void(std::uint64_t)>& expire);

  /// True when advance(now_ns) would cross a tick boundary and do real
  /// work. Per-packet hot paths gate on this: it is a single compare
  /// against the cached boundary, avoiding the 64-bit division (and the
  /// caller's std::function materialization) on every packet of a tick.
  bool due(std::uint64_t now_ns) const noexcept {
    return now_ns >= next_tick_ns_;
  }

  std::uint64_t now_ns() const noexcept { return now_ns_; }
  std::size_t pending() const noexcept { return pending_; }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t deadline_ns;
  };

  /// Slot `entry`, clamping its tick to at least `min_tick`. schedule()
  /// passes current_tick_ + 1 (a slot already being drained must not
  /// receive new entries); cascade re-inserts during advance() pass
  /// current_tick_ so boundary deadlines fire on time.
  void insert(Entry entry, std::uint64_t min_tick);
  std::size_t level_span_ticks(std::size_t level) const;

  Config config_;
  std::uint64_t now_ns_ = 0;
  std::uint64_t current_tick_ = 0;
  std::uint64_t next_tick_ns_ = 0;  // (current_tick_ + 1) * tick_ns
  std::size_t pending_ = 0;
  // wheel_[level][slot] = entries
  std::vector<std::vector<std::vector<Entry>>> wheels_;
  std::vector<Entry> overflow_;  // beyond the top level's horizon
};

}  // namespace retina::conntrack

// Connection lifecycle states (paper §5.2, Fig. 4). Every tracked
// connection is in exactly one state, which dictates how much work the
// pipeline performs on its packets:
//   kProbe  — protocol not yet identified; buffer/inspect payloads to
//             probe for application-layer protocol messages.
//   kParse  — protocol identified and the filter still live; reassemble
//             and run the application-layer parser.
//   kTrack  — subscription satisfied or parsing no longer needed; keep
//             connection state (deliver packets / accumulate the record)
//             without parsing or reordering.
//   kDelete — connection failed a filter or terminated; remove it.
// The connection and session filters act as choice pseudostates between
// these (the framework derives the transitions from the subscription).
#pragma once

namespace retina::conntrack {

enum class ConnState {
  kProbe,
  kParse,
  kTrack,
  kDelete,
};

inline const char* conn_state_name(ConnState s) {
  switch (s) {
    case ConnState::kProbe: return "probe";
    case ConnState::kParse: return "parse";
    case ConnState::kTrack: return "track";
    case ConnState::kDelete: return "delete";
  }
  return "?";
}

}  // namespace retina::conntrack

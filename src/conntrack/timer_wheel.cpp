#include "conntrack/timer_wheel.hpp"

#include <algorithm>

namespace retina::conntrack {

TimerWheel::TimerWheel(const Config& config) : config_(config) {
  wheels_.resize(config_.levels);
  for (auto& level : wheels_) {
    level.resize(config_.slots_per_level);
  }
  next_tick_ns_ = config_.tick_ns;  // boundary of tick 1
}

std::size_t TimerWheel::level_span_ticks(std::size_t level) const {
  // Span of one slot at `level`: S^level ticks.
  std::size_t span = 1;
  for (std::size_t i = 0; i < level; ++i) span *= config_.slots_per_level;
  return span;
}

void TimerWheel::schedule(std::uint64_t id, std::uint64_t deadline_ns) {
  // Past deadlines fire on the next tick; never slot behind the cursor.
  insert(Entry{id, deadline_ns}, current_tick_ + 1);
  ++pending_;
}

void TimerWheel::insert(Entry entry, std::uint64_t min_tick) {
  const std::uint64_t deadline_tick = entry.deadline_ns / config_.tick_ns;
  const std::uint64_t effective_tick = std::max(deadline_tick, min_tick);
  const std::uint64_t delta = effective_tick - current_tick_;

  const std::size_t S = config_.slots_per_level;
  std::uint64_t span = 1;
  for (std::size_t level = 0; level < config_.levels; ++level) {
    span *= S;  // S^(level+1)
    if (delta < span) {
      const std::size_t slot_div = level_span_ticks(level);
      const std::size_t slot = (effective_tick / slot_div) % S;
      wheels_[level][slot].push_back(entry);
      return;
    }
  }
  overflow_.push_back(entry);
}

void TimerWheel::advance(std::uint64_t now_ns,
                         const std::function<void(std::uint64_t)>& expire) {
  if (now_ns < now_ns_) return;  // time is monotonic
  now_ns_ = now_ns;
  if (now_ns < next_tick_ns_) return;  // inside the current tick
  const std::uint64_t target_tick = now_ns / config_.tick_ns;
  const std::size_t S = config_.slots_per_level;

  std::vector<Entry> scratch;
  while (current_tick_ < target_tick) {
    ++current_tick_;

    // Cascade higher levels downward on wrap boundaries, innermost
    // first so entries settle into the correct lower-level slots before
    // this tick's level-0 slot fires. Re-inserts are allowed to land in
    // the level-0 slot that fires *this* tick (min_tick =
    // current_tick_): an entry whose deadline falls exactly on the
    // cascade boundary must fire now, not one tick late.
    std::uint64_t div = S;
    for (std::size_t level = 1; level < config_.levels; ++level) {
      if (current_tick_ % div != 0) break;
      const std::size_t slot = (current_tick_ / div) % S;
      scratch.swap(wheels_[level][slot]);
      for (const auto& entry : scratch) insert(entry, current_tick_);
      scratch.clear();
      div *= S;
    }
    // Top-level wrap: re-examine the overflow list.
    if (current_tick_ % level_span_ticks(config_.levels - 1) == 0 &&
        !overflow_.empty()) {
      scratch.swap(overflow_);
      for (const auto& entry : scratch) insert(entry, current_tick_);
      scratch.clear();
    }

    auto& slot = wheels_[0][current_tick_ % S];
    if (slot.empty()) continue;
    scratch.swap(slot);
    for (const auto& entry : scratch) {
      --pending_;
      expire(entry.id);  // may re-schedule()
    }
    scratch.clear();
  }
  next_tick_ns_ = (current_tick_ + 1) * config_.tick_ns;
}

}  // namespace retina::conntrack

// FlatIndex: an open-addressing hash index from canonical five-tuples
// to connection slot ids. The paper's connection tracker builds on
// Girondi et al.'s observation that per-core tables with cheap
// insert/lookup and timer-wheel deletion scale independently of load;
// a flat, cache-friendly probe sequence beats a node-based
// unordered_map on exactly the lookup-heavy access pattern the
// per-packet path has (see bench/micro_hotpaths BM_ConnTable*).
//
// Design: power-of-two capacity, linear probing, backward-shift
// deletion (no tombstones), cached 64-bit hashes so most probe
// comparisons never touch the 40-byte tuple. Single-threaded by
// design — one table per core.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/five_tuple.hpp"

namespace retina::conntrack {

class FlatIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  explicit FlatIndex(std::size_t initial_capacity = 1024) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Hint the cache that the key hashing to `key_hash` (the raw
  /// FiveTuple::hash(), pre-mix) is about to be probed: issues a
  /// software prefetch for the first cache line of the probe sequence.
  /// Used by the burst pipeline's pass 1 so that by the time pass 2
  /// calls find(), the line is (ideally) already resident. Taking the
  /// hash instead of the key lets the caller compute the ~40-byte FNV
  /// chain once per packet and reuse it across prefetch and find.
  void prefetch_hashed(std::uint64_t key_hash) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t hash = mix(key_hash);
    const auto* p = reinterpret_cast<const char*>(
        &slots_[hash & (slots_.size() - 1)]);
    // Slots are ~56 bytes, so the home slot plus even a one-step probe
    // walk regularly crosses a line boundary: warm two lines.
    __builtin_prefetch(static_cast<const void*>(p), /*rw=*/0,
                       /*locality=*/3);
    __builtin_prefetch(static_cast<const void*>(p + 64), /*rw=*/0,
                       /*locality=*/3);
#else
    (void)key_hash;
#endif
  }

  /// Value for `key`, or kNotFound.
  std::uint32_t find(const packet::FiveTuple& key) const noexcept {
    return find_hashed(key, key.hash());
  }

  /// Cheap slot hint for prefetching: the value at the key's *home*
  /// slot if the cached hash there matches, else kNotFound. No probe
  /// walk and no key comparison — a stale or colliding answer merely
  /// prefetches the wrong line, so correctness never depends on it.
  std::uint32_t peek_home_hashed(std::uint64_t key_hash) const noexcept {
    const std::uint64_t hash = mix(key_hash);
    const Slot& slot = slots_[hash & (slots_.size() - 1)];
    return (slot.occupied && slot.hash == hash) ? slot.value : kNotFound;
  }

  /// find() with the raw key hash supplied by the caller — the hot path
  /// computes it once per packet and reuses it here.
  std::uint32_t find_hashed(const packet::FiveTuple& key,
                            std::uint64_t key_hash) const noexcept {
    const std::uint64_t hash = mix(key_hash);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (true) {
      const Slot& slot = slots_[i];
      if (!slot.occupied) return kNotFound;
      if (slot.hash == hash && slot.key == key) return slot.value;
      i = (i + 1) & mask;
    }
  }

  /// Insert a new key (caller guarantees it is absent).
  void insert(const packet::FiveTuple& key, std::uint32_t value) {
    if ((size_ + 1) * 8 > slots_.size() * 7) grow();  // 87.5% max load
    insert_raw(mix(key.hash()), key, value);
    ++size_;
  }

  /// Remove a key; returns false if absent. Backward-shift deletion
  /// keeps probe sequences tombstone-free.
  bool erase(const packet::FiveTuple& key) noexcept {
    const std::uint64_t hash = mix(key.hash());
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (true) {
      Slot& slot = slots_[i];
      if (!slot.occupied) return false;
      if (slot.hash == hash && slot.key == key) break;
      i = (i + 1) & mask;
    }
    // Backward shift: close the hole by moving displaced entries up.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask;
    while (slots_[j].occupied) {
      const std::size_t home = slots_[j].hash & mask;
      // Can slot j legally move into the hole? Only if the hole lies
      // within its probe path (home..j in circular order).
      const bool movable =
          ((j - home) & mask) >= ((j - hole) & mask);
      if (movable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    packet::FiveTuple key{};
    std::uint32_t value = 0;
    bool occupied = false;
  };

  /// Finalizing mix so low bits are well distributed for masking.
  static std::uint64_t mix(std::uint64_t h) noexcept {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  void insert_raw(std::uint64_t hash, const packet::FiveTuple& key,
                  std::uint32_t value) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (slots_[i].occupied) i = (i + 1) & mask;
    slots_[i] = Slot{hash, key, value, true};
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    for (const auto& slot : old) {
      if (slot.occupied) insert_raw(slot.hash, slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace retina::conntrack

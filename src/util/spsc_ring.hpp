// Bounded single-producer / single-consumer ring. Models a NIC receive
// descriptor ring: the (simulated) NIC is the producer, one worker core
// is the consumer, and a full ring means packet loss — exactly the
// zero-loss accounting the paper's throughput experiments use.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace retina::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : slots_(round_up_pow2(capacity + 1)), mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (drops) when full.
  bool push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched (DPDK rx_burst semantics): move up to `n`
  /// entries into `out` and return how many were taken. One acquire
  /// and one release for the whole batch instead of one pair per entry.
  std::size_t pop_burst(T* out, std::size_t n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t available = (head - tail) & mask_;
    const std::size_t take = available < n ? available : n;
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    if (take > 0) {
      tail_.store((tail + take) & mask_, std::memory_order_release);
    }
    return take;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  std::size_t capacity() const { return slots_.size() - 1; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace retina::util

// CPU-cycle accounting. The paper reports per-stage costs in CPU cycles
// (Fig. 7) and approximates callback complexity by busy-looping for a
// cycle count (Fig. 5). We measure with rdtsc where available and fall
// back to a calibrated steady_clock so "cycles" remain a meaningful,
// monotonic unit on any host.
#pragma once

#include <cstdint>

namespace retina::util {

/// Raw timestamp counter read (monotonic, per-package on modern x86).
std::uint64_t rdtsc() noexcept;

/// Calibrated counter frequency in Hz (cycles per second). Computed once
/// against steady_clock on first use.
double tsc_hz();

/// Convert a cycle delta to seconds using the calibrated frequency.
double cycles_to_seconds(std::uint64_t cycles);

/// Convert seconds to cycles using the calibrated frequency.
std::uint64_t seconds_to_cycles(double seconds);

/// Busy-loop for approximately `cycles` cycles. Used to emulate callback
/// workloads of a given complexity (Fig. 5).
void spin_cycles(std::uint64_t cycles) noexcept;

/// Scoped accumulator: adds the elapsed cycles of its lifetime into a
/// counter. Used by the pipeline's per-stage instrumentation.
class CycleTimer {
 public:
  explicit CycleTimer(std::uint64_t& sink) noexcept
      : sink_(sink), start_(rdtsc()) {}
  CycleTimer(const CycleTimer&) = delete;
  CycleTimer& operator=(const CycleTimer&) = delete;
  ~CycleTimer() { sink_ += rdtsc() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

}  // namespace retina::util

// ipcrypt: format-preserving encryption of IPv4 addresses (J-P Aumasson's
// public 4-round ARX permutation over 4 bytes with a 16-byte key). Used by
// the anonymized-packet-analysis application (paper §7.2), which calls the
// rust-ipcrypt crate; this is the same algorithm.
//
// The permutation is a bijection on the 2^32 address space, so distinct
// addresses stay distinct (joinability is preserved) while the mapping is
// keyed. `encrypt_prefix_preserving` additionally anonymizes an address
// one octet at a time so that addresses sharing a /8, /16, or /24 keep a
// common anonymized prefix, matching the paper's "preserving subnet
// structures" requirement.
#pragma once

#include <array>
#include <cstdint>

namespace retina::util {

class IpCrypt {
 public:
  using Key = std::array<std::uint8_t, 16>;

  explicit IpCrypt(const Key& key) noexcept : key_(key) {}

  /// Encrypt one IPv4 address (host byte order in, host byte order out).
  std::uint32_t encrypt(std::uint32_t ip) const noexcept;

  /// Decrypt (inverse permutation).
  std::uint32_t decrypt(std::uint32_t ip) const noexcept;

  /// Prefix-preserving variant: two addresses that agree on their first k
  /// octets agree on the first k anonymized octets.
  std::uint32_t encrypt_prefix_preserving(std::uint32_t ip) const noexcept;

 private:
  Key key_;
};

}  // namespace retina::util

// Endian-safe byte readers and writers used by every header view and
// packet-crafting routine. All network protocols handled here are
// big-endian on the wire; the host is assumed little- or big-endian
// (conversions are explicit byte-shuffles, never casts).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace retina::util {

/// Read a big-endian 16-bit value from `p`.
inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

/// Read a big-endian 32-bit value from `p`.
inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// Read a big-endian 64-bit value from `p`.
inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

/// Read a big-endian 24-bit value (e.g. TLS handshake lengths).
inline std::uint32_t load_be24(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 16) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         static_cast<std::uint32_t>(p[2]);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be24(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 16);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

/// A bounded, non-throwing byte cursor for parsing untrusted payloads.
/// Every accessor checks remaining length; once an out-of-bounds read is
/// attempted the cursor is poisoned (`ok() == false`) and all further
/// reads return zeros. Callers check `ok()` once at the end of a parse
/// step instead of after every read.
class ByteReader {
 public:
  ByteReader() = default;
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  bool ok() const noexcept { return ok_; }
  std::size_t offset() const noexcept { return off_; }
  std::size_t remaining() const noexcept {
    return ok_ ? data_.size() - off_ : 0;
  }

  std::uint8_t u8() noexcept {
    if (!ensure(1)) return 0;
    return data_[off_++];
  }
  std::uint16_t be16() noexcept {
    if (!ensure(2)) return 0;
    auto v = load_be16(data_.data() + off_);
    off_ += 2;
    return v;
  }
  std::uint32_t be24() noexcept {
    if (!ensure(3)) return 0;
    auto v = load_be24(data_.data() + off_);
    off_ += 3;
    return v;
  }
  std::uint32_t be32() noexcept {
    if (!ensure(4)) return 0;
    auto v = load_be32(data_.data() + off_);
    off_ += 4;
    return v;
  }

  /// Borrow `n` bytes without copying; empty span on underflow.
  std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (!ensure(n)) return {};
    auto s = data_.subspan(off_, n);
    off_ += n;
    return s;
  }

  bool skip(std::size_t n) noexcept {
    if (!ensure(n)) return false;
    off_ += n;
    return true;
  }

 private:
  bool ensure(std::size_t n) noexcept {
    if (!ok_ || data_.size() - off_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_{};
  std::size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace retina::util

// SmallVector: a minimal inline-storage vector for hot paths. Field
// accessors yield 1–2 values per packet; storing them inline keeps the
// per-predicate evaluation allocation-free (the compiled filter's match
// path must not touch the heap).
#pragma once

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace retina::util {

template <typename T, std::size_t N>
class SmallVector {
 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { copy_from(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      copy_from(other);
    }
    return *this;
  }
  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      move_from(std::move(other));
    }
    return *this;
  }
  ~SmallVector() { clear(); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ < N) {
      T* slot = new (inline_slot(size_)) T(std::forward<Args>(args)...);
      ++size_;
      return *slot;
    }
    overflow_.emplace_back(std::forward<Args>(args)...);
    ++size_;
    return overflow_.back();
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    return i < N ? *inline_slot_const(i) : overflow_[i - N];
  }
  T& operator[](std::size_t i) {
    return i < N ? *inline_slot(i) : overflow_[i - N];
  }

  void clear() {
    const std::size_t inline_count = size_ < N ? size_ : N;
    for (std::size_t i = 0; i < inline_count; ++i) {
      inline_slot(i)->~T();
    }
    overflow_.clear();
    size_ = 0;
  }

  // Minimal iteration support (indexed; storage is split).
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }

  class const_iterator {
   public:
    const_iterator(const SmallVector* v, std::size_t i) : v_(v), i_(i) {}
    const T& operator*() const { return (*v_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const {
      return i_ != other.i_;
    }

   private:
    const SmallVector* v_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  T* inline_slot(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(storage_ + i * sizeof(T)));
  }
  const T* inline_slot_const(std::size_t i) const {
    return std::launder(
        reinterpret_cast<const T*>(storage_ + i * sizeof(T)));
  }
  void copy_from(const SmallVector& other) {
    for (std::size_t i = 0; i < other.size_; ++i) emplace_back(other[i]);
  }
  void move_from(SmallVector&& other) {
    for (std::size_t i = 0; i < other.size_; ++i) {
      emplace_back(std::move(other[i]));
    }
    other.clear();
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  std::vector<T> overflow_;
  std::size_t size_ = 0;
};

}  // namespace retina::util

// Single-writer atomic cells for hot-path telemetry. The pipeline and
// NIC hot paths have exactly one writer per counter (one core per
// receive queue, one dispatching thread per port), so increments can be
// a relaxed load+store pair — which compiles to a plain add on x86 —
// while concurrent reader threads (the telemetry sampler) still get
// tear-free values without locks or fenced RMW instructions.
#pragma once

#include <atomic>
#include <cstdint>

namespace retina::util {

/// A 64-bit cell with one writer and any number of readers. Writes use
/// non-atomic-RMW relaxed stores (single-writer contract); reads are
/// relaxed loads. Both are data-race-free under TSan.
class RelaxedCell {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.store(value_.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  /// Gauge-style overwrite.
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace retina::util

#include "util/cycles.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace retina::util {

std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

double calibrate_tsc_hz() {
  using clock = std::chrono::steady_clock;
  // Two short measurement windows; take the larger to reduce the effect
  // of descheduling during calibration.
  double best = 0.0;
  for (int i = 0; i < 2; ++i) {
    const auto t0 = clock::now();
    const auto c0 = rdtsc();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto c1 = rdtsc();
    const auto t1 = clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0) best = std::max(best, static_cast<double>(c1 - c0) / secs);
  }
  return best > 0 ? best : 1e9;
}

}  // namespace

double tsc_hz() {
  static const double hz = calibrate_tsc_hz();
  return hz;
}

double cycles_to_seconds(std::uint64_t cycles) {
  return static_cast<double>(cycles) / tsc_hz();
}

std::uint64_t seconds_to_cycles(double seconds) {
  return static_cast<std::uint64_t>(seconds * tsc_hz());
}

void spin_cycles(std::uint64_t cycles) noexcept {
  if (cycles == 0) return;
  const std::uint64_t start = rdtsc();
  while (rdtsc() - start < cycles) {
    // Busy-wait: this models a CPU-bound callback body.
  }
}

}  // namespace retina::util

// Deterministic PRNG (xoshiro256**) used by the traffic generator and
// property tests. std::mt19937 is avoided in hot paths for speed and so
// that traces are reproducible across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>

namespace retina::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Bounded Pareto sample — used for heavy-tailed flow lengths.
  double pareto(double xmin, double alpha, double xmax) noexcept {
    const double u = uniform();
    const double ha = 1.0 - std::pow(xmin / xmax, alpha);
    const double x = xmin / std::pow(1.0 - u * ha, 1.0 / alpha);
    return x;
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace retina::util

#include "util/ipcrypt.hpp"

namespace retina::util {

namespace {

struct State {
  std::uint8_t b0, b1, b2, b3;
};

std::uint8_t rotl8(std::uint8_t x, int k) noexcept {
  return static_cast<std::uint8_t>((x << k) | (x >> (8 - k)));
}

// One ipcrypt permutation round (ARX on 4 bytes).
void permute_fwd(State& s) noexcept {
  s.b0 = static_cast<std::uint8_t>(s.b0 + s.b1);
  s.b2 = static_cast<std::uint8_t>(s.b2 + s.b3);
  s.b1 = rotl8(s.b1, 2);
  s.b3 = rotl8(s.b3, 5);
  s.b1 ^= s.b0;
  s.b3 ^= s.b2;
  s.b0 = rotl8(s.b0, 4);
  s.b0 = static_cast<std::uint8_t>(s.b0 + s.b3);
  s.b2 = static_cast<std::uint8_t>(s.b2 + s.b1);
  s.b1 = rotl8(s.b1, 3);
  s.b3 = rotl8(s.b3, 7);
  s.b1 ^= s.b2;
  s.b3 ^= s.b0;
  s.b2 = rotl8(s.b2, 4);
}

void permute_bwd(State& s) noexcept {
  s.b2 = rotl8(s.b2, 4);
  s.b1 ^= s.b2;
  s.b3 ^= s.b0;
  s.b1 = rotl8(s.b1, 5);
  s.b3 = rotl8(s.b3, 1);
  s.b0 = static_cast<std::uint8_t>(s.b0 - s.b3);
  s.b2 = static_cast<std::uint8_t>(s.b2 - s.b1);
  s.b0 = rotl8(s.b0, 4);
  s.b1 ^= s.b0;
  s.b3 ^= s.b2;
  s.b1 = rotl8(s.b1, 6);
  s.b3 = rotl8(s.b3, 3);
  s.b0 = static_cast<std::uint8_t>(s.b0 - s.b1);
  s.b2 = static_cast<std::uint8_t>(s.b2 - s.b3);
}

void xor_key(State& s, const IpCrypt::Key& k, int off) noexcept {
  s.b0 ^= k[static_cast<std::size_t>(off + 0)];
  s.b1 ^= k[static_cast<std::size_t>(off + 1)];
  s.b2 ^= k[static_cast<std::size_t>(off + 2)];
  s.b3 ^= k[static_cast<std::size_t>(off + 3)];
}

State to_state(std::uint32_t ip) noexcept {
  return State{static_cast<std::uint8_t>(ip >> 24),
               static_cast<std::uint8_t>(ip >> 16),
               static_cast<std::uint8_t>(ip >> 8),
               static_cast<std::uint8_t>(ip)};
}

std::uint32_t from_state(const State& s) noexcept {
  return (static_cast<std::uint32_t>(s.b0) << 24) |
         (static_cast<std::uint32_t>(s.b1) << 16) |
         (static_cast<std::uint32_t>(s.b2) << 8) |
         static_cast<std::uint32_t>(s.b3);
}

}  // namespace

std::uint32_t IpCrypt::encrypt(std::uint32_t ip) const noexcept {
  State s = to_state(ip);
  xor_key(s, key_, 0);
  permute_fwd(s);
  xor_key(s, key_, 4);
  permute_fwd(s);
  xor_key(s, key_, 8);
  permute_fwd(s);
  xor_key(s, key_, 12);
  return from_state(s);
}

std::uint32_t IpCrypt::decrypt(std::uint32_t ip) const noexcept {
  State s = to_state(ip);
  xor_key(s, key_, 12);
  permute_bwd(s);
  xor_key(s, key_, 8);
  permute_bwd(s);
  xor_key(s, key_, 4);
  permute_bwd(s);
  xor_key(s, key_, 0);
  return from_state(s);
}

std::uint32_t IpCrypt::encrypt_prefix_preserving(
    std::uint32_t ip) const noexcept {
  // Each output octet is a keyed permutation of the corresponding input
  // octet, keyed by the preceding (plaintext) prefix. Identical prefixes
  // therefore map to identical anonymized prefixes.
  std::uint32_t out = 0;
  std::uint32_t prefix = 0;
  for (int i = 0; i < 4; ++i) {
    const auto octet =
        static_cast<std::uint8_t>(ip >> (24 - 8 * i));
    // Derive a per-position byte permutation from the full-width cipher
    // applied to (prefix || position).
    const std::uint32_t tweak = encrypt(prefix ^ (0x01010101u * (i + 1)));
    // A fixed odd multiplier plus keyed XOR is a bijection on 8 bits.
    const auto enc = static_cast<std::uint8_t>(
        (octet * 0x25u + static_cast<std::uint8_t>(tweak)) & 0xff);
    out = (out << 8) | enc;
    prefix = (prefix << 8) | octet;
  }
  return out;
}

}  // namespace retina::util

// Small statistics helpers used by the evaluation harness: an exact
// percentile accumulator (traffic stats, Table 2) and a log-bucketed
// histogram (packet-size distribution, Fig. 13; byte-count CDFs, Fig. 9).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace retina::util {

/// Exact-value accumulator: stores samples, answers percentiles/mean.
/// Fine for experiment-scale sample counts (millions).
class Percentiles {
 public:
  void add(double v) { samples_.push_back(v); }
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  /// p in [0, 100]. Nearest-rank percentile; 0 for an empty set.
  double percentile(double p) const;
  double min() const;
  double max() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void sort_if_needed() const;
};

/// Fixed-width linear histogram over [lo, hi) with `bins` buckets.
/// Out-of-range samples clamp to the edge buckets.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double v, std::uint64_t weight = 1);
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_fraction(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Empirical CDF: add samples, then query fraction <= x or render a
/// fixed number of (x, F(x)) points for plotting.
class Cdf {
 public:
  void add(double v) { samples_.push_back(v); }
  std::size_t count() const noexcept { return samples_.size(); }
  /// Fraction of samples <= x.
  double at(double x) const;
  /// `points` evenly spaced quantiles (q, value) with q in (0, 1].
  std::vector<std::pair<double, double>> quantile_points(
      std::size_t points) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void sort_if_needed() const;
};

/// Render a unicode sparkline-ish bar for console tables (benches print
/// figure shapes textually).
std::string ascii_bar(double fraction, std::size_t width = 40);

}  // namespace retina::util

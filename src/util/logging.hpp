// Minimal leveled logger. Retina's real-time monitoring (paper §5.3)
// reports throughput/loss/memory; our runtime uses this for the same
// operational feedback. Off-by-default levels keep benches quiet.
#pragma once

#include <sstream>
#include <string>

namespace retina::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace retina::util

// retina::Result<T> — a std::expected-style success-or-error value used
// by the fallible entry points of the public API (filter compilation,
// Subscription::Builder::build(), Runtime::create(), SimNic::create()).
// The repo targets C++20, so std::expected is hand-rolled: a Result is
// either a T or an Error carrying an actionable message ("bad filter:
// unknown protocol 'htttp'", "bad RSS key: expected 40 bytes"), letting
// callers report configuration mistakes instead of aborting on a thrown
// exception deep inside the runtime.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace retina {

/// The error arm: an actionable, operator-facing message.
struct Error {
  std::string message;
};

/// Convenience constructor so call sites read `return Err("...")`.
inline Error Err(std::string message) { return Error{std::move(message)}; }

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from either arm keeps call sites terse:
  // `return value;` / `return Err("why");`
  Result(T value) : value_(std::move(value)) {}
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// The error message; empty when ok().
  const std::string& error() const noexcept { return error_.message; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Error error_;
};

/// Result<void>: success/failure with no payload (validation routines).
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : ok_(false), error_(std::move(error)) {}

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_.message; }

 private:
  bool ok_ = true;
  Error error_;
};

}  // namespace retina

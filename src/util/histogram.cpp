#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace retina::util {

void Percentiles::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Percentiles::min() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Percentiles::max() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.back();
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram");
}

void LinearHistogram::add(double v, std::uint64_t weight) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((v - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double LinearHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double LinearHistogram::bin_fraction(std::size_t i) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(i)) /
                           static_cast<double>(total_);
}

void Cdf::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::quantile_points(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  sort_if_needed();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1));
    out.emplace_back(q, samples_[idx]);
  }
  return out;
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(std::lround(fraction * static_cast<double>(width)));
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

}  // namespace retina::util

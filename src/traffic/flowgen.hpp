// Workload generation. `InterleavedFlowGen` streams packets from many
// concurrently active flows (crafted by a pluggable flow factory and
// merged by timestamp) so arbitrarily long runs use bounded memory.
// `CampusMixConfig` + `make_campus_factory` reproduce the paper's
// production-network profile (Appendix C, Table 2 / Fig. 13): 65%
// single-SYN connections, ~70/30 TCP/UDP, heavy-tailed flow sizes,
// a realistic SNI catalog, 6% out-of-order flows, bimodal packet sizes.
#pragma once

#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "packet/mbuf.hpp"
#include "traffic/craft.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"

namespace retina::traffic {

/// Crafts all packets of one flow starting at `start_ts_ns`.
using FlowFactory = std::function<std::vector<packet::Mbuf>(
    std::uint64_t start_ts_ns, util::Xoshiro256& rng)>;

class InterleavedFlowGen {
 public:
  InterleavedFlowGen(FlowFactory factory, std::size_t total_flows,
                     double flows_per_second, std::size_t max_active,
                     std::uint64_t seed);

  /// Produce the next packet (roughly time ordered across flows).
  /// Returns false when all flows are exhausted.
  bool next(packet::Mbuf& out);

  std::size_t flows_started() const noexcept { return flows_started_; }
  std::uint64_t packets_emitted() const noexcept { return packets_emitted_; }

  /// Drain the whole generator into a trace (small workloads/tests).
  Trace materialize();

 private:
  void spawn_ready();

  struct ActiveFlow {
    std::vector<packet::Mbuf> packets;
    std::size_t index = 0;
  };
  struct HeapItem {
    std::uint64_t ts;
    std::size_t slot;
    bool operator>(const HeapItem& other) const { return ts > other.ts; }
  };

  FlowFactory factory_;
  std::size_t total_flows_;
  std::uint64_t interarrival_ns_;
  std::size_t max_active_;
  util::Xoshiro256 rng_;

  std::vector<ActiveFlow> slots_;
  std::vector<std::size_t> free_slots_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::uint64_t next_start_ts_ = 1'000'000;  // t=1ms
  std::size_t flows_started_ = 0;
  std::uint64_t packets_emitted_ = 0;
};

/// Campus traffic profile (Appendix C targets).
struct CampusMixConfig {
  std::uint64_t seed = 42;
  std::size_t total_flows = 20'000;
  double flows_per_second = 5'000.0;
  std::size_t max_active = 512;

  // Composition (Table 2: 69.7% TCP / 29.8% UDP connections; 65% of
  // connections are single unanswered SYNs).
  double frac_udp = 0.298;
  double frac_other_l3 = 0.005;       // non-IP frames
  double frac_single_syn = 0.65;      // of TCP flows
  double frac_ipv6 = 0.10;
  double frac_ooo_flows = 0.06;       // flows with reordering (Table 2)
  double frac_no_close = 0.10;        // flows that end without FIN

  // Application mix among full TCP connections.
  double frac_tls = 0.58;
  double frac_http = 0.25;
  double frac_ssh = 0.04;
  double frac_smtp = 0.03;
  // remainder: opaque TCP (unknown protocol)

  // Heavy-tailed response sizes.
  double pareto_alpha = 1.3;
  double resp_min_bytes = 2'000;
  double resp_max_bytes = 4'000'000;

  /// Fraction of TLS<=1.2 flows served a certificate whose subject does
  /// not cover the SNI (interception/misconfiguration population for the
  /// cert_monitor example).
  double frac_cert_mismatch = 0.0;

  // §7.1: seed a broken-entropy client population that repeats nonces.
  bool nonce_anomalies = false;
  double frac_repeated_nonce = 0.0006;
  double frac_zero_nonce = 0.00003;

  /// (domain, weight) SNI catalog; a default catalog with a long tail of
  /// .com domains plus video CDNs is used when empty.
  std::vector<std::pair<std::string, double>> sni_catalog;
};

/// Default SNI catalog used by the campus mix.
std::vector<std::pair<std::string, double>> default_sni_catalog();

/// Build a flow factory implementing the campus profile.
FlowFactory make_campus_factory(const CampusMixConfig& config);

/// Convenience: a generator over the campus profile.
InterleavedFlowGen make_campus_gen(const CampusMixConfig& config);

/// Convenience: a fully materialized campus trace (keep total_flows
/// modest; memory is ~packets × avg size).
Trace make_campus_trace(const CampusMixConfig& config);

/// The fixed anomalous client-random value seeded by `nonce_anomalies`
/// (mirrors the value reported in paper §7.1).
const std::array<std::uint8_t, 32>& anomalous_client_random();

}  // namespace retina::traffic

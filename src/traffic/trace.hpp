// Trace: a fully materialized, time-ordered packet capture held in
// memory. Small experiments and tests use traces directly; large runs
// stream packets from a generator instead (see flowgen.hpp) to bound
// memory.
#pragma once

#include <span>
#include <vector>

#include "packet/mbuf.hpp"

namespace retina::traffic {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<packet::Mbuf> packets)
      : packets_(std::move(packets)) {}

  void append(packet::Mbuf mbuf) { packets_.push_back(std::move(mbuf)); }
  void append(std::vector<packet::Mbuf> packets);

  /// Stable sort by timestamp (merging flows crafted independently).
  void sort_by_time();

  std::span<const packet::Mbuf> packets() const noexcept { return packets_; }
  std::size_t size() const noexcept { return packets_.size(); }
  bool empty() const noexcept { return packets_.empty(); }

  std::uint64_t total_bytes() const;
  /// Last timestamp minus first (0 for traces with < 2 packets).
  std::uint64_t duration_ns() const;
  double avg_packet_bytes() const;

 private:
  std::vector<packet::Mbuf> packets_;
};

}  // namespace retina::traffic

// Trace: a fully materialized, time-ordered packet capture held in
// memory. Small experiments and tests use traces directly; large runs
// stream packets from a generator instead (see flowgen.hpp) to bound
// memory.
#pragma once

#include <span>
#include <vector>

#include "packet/mbuf.hpp"

namespace retina::traffic {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<packet::Mbuf> packets)
      : packets_(std::move(packets)) {}

  void append(packet::Mbuf mbuf) { packets_.push_back(std::move(mbuf)); }
  void append(std::vector<packet::Mbuf> packets);

  /// Stable sort by timestamp (merging flows crafted independently).
  void sort_by_time();

  std::span<const packet::Mbuf> packets() const noexcept { return packets_; }
  std::size_t size() const noexcept { return packets_.size(); }
  bool empty() const noexcept { return packets_.empty(); }

  /// Sum of wire lengths. Order-independent: valid on a freshly merged
  /// trace before sort_by_time().
  std::uint64_t total_bytes() const;
  /// Max timestamp minus min (0 for traces with < 2 packets). Scans the
  /// whole trace rather than reading front()/back(), so it does NOT
  /// assume the packets are time-sorted — appending flows crafted
  /// independently and asking for the duration before sort_by_time()
  /// gives the same answer as after.
  std::uint64_t duration_ns() const;
  double avg_packet_bytes() const;

 private:
  std::vector<packet::Mbuf> packets_;
};

}  // namespace retina::traffic

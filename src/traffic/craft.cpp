#include "traffic/craft.hpp"

#include <algorithm>
#include <cstring>

#include "packet/checksum.hpp"
#include "protocols/tls/x509.hpp"
#include "packet/packet_view.hpp"
#include "packet/headers.hpp"
#include "util/bytes.hpp"

namespace retina::traffic {

namespace {

using util::store_be16;
using util::store_be24;
using util::store_be32;

void append_be16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_be24(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_be32(Bytes& out, std::uint32_t v) {
  append_be16(out, static_cast<std::uint16_t>(v >> 16));
  append_be16(out, static_cast<std::uint16_t>(v));
}

void append_str(Bytes& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}

/// Ethernet header with synthetic locally-administered MACs.
void append_eth_header(Bytes& out, std::uint16_t ether_type) {
  static const std::uint8_t dst[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  static const std::uint8_t src[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  out.insert(out.end(), dst, dst + 6);
  out.insert(out.end(), src, src + 6);
  append_be16(out, ether_type);
}

/// Frame = Ethernet + IPv4/IPv6 + `l4` (fully built L4 segment whose
/// checksum field will be fixed up here for IPv4).
packet::Mbuf finish_ip_frame(const FlowEndpoints& ep, bool from_client,
                             std::uint8_t ip_proto, Bytes l4,
                             std::size_t l4_checksum_offset,
                             std::uint64_t ts_ns) {
  const auto& src_ip = from_client ? ep.client_ip : ep.server_ip;
  const auto& dst_ip = from_client ? ep.server_ip : ep.client_ip;

  Bytes frame;
  if (!ep.is_v6()) {
    frame.reserve(packet::Ethernet::kHeaderLen + 20 + l4.size());
    append_eth_header(frame, packet::kEtherTypeIpv4);
    const std::size_t ip_off = frame.size();
    frame.resize(frame.size() + 20);
    std::uint8_t* ip = frame.data() + ip_off;
    ip[0] = 0x45;  // v4, IHL 5
    ip[1] = 0;
    store_be16(ip + 2, static_cast<std::uint16_t>(20 + l4.size()));
    store_be16(ip + 4, 0x1234);  // identification
    store_be16(ip + 6, 0x4000);  // DF
    ip[8] = 64;                  // TTL
    ip[9] = ip_proto;
    store_be16(ip + 10, 0);
    store_be32(ip + 12, src_ip.as_v4());
    store_be32(ip + 16, dst_ip.as_v4());
    // L4 checksum over the pseudo-header.
    if (l4_checksum_offset + 2 <= l4.size()) {
      store_be16(l4.data() + l4_checksum_offset, 0);
      const auto csum = packet::l4_checksum_v4(src_ip.as_v4(), dst_ip.as_v4(),
                                               ip_proto, l4);
      store_be16(l4.data() + l4_checksum_offset, csum);
    }
    frame.insert(frame.end(), l4.begin(), l4.end());
    // IPv4 header checksum last.
    std::uint8_t* ip2 = frame.data() + ip_off;
    const auto hcsum = packet::internet_checksum({ip2, 20});
    store_be16(ip2 + 10, hcsum);
  } else {
    frame.reserve(packet::Ethernet::kHeaderLen + 40 + l4.size());
    append_eth_header(frame, packet::kEtherTypeIpv6);
    const std::size_t ip_off = frame.size();
    frame.resize(frame.size() + 40);
    std::uint8_t* ip = frame.data() + ip_off;
    ip[0] = 0x60;
    store_be16(ip + 4, static_cast<std::uint16_t>(l4.size()));
    ip[6] = ip_proto;
    ip[7] = 64;  // hop limit
    std::memcpy(ip + 8, src_ip.bytes.data(), 16);
    std::memcpy(ip + 24, dst_ip.bytes.data(), 16);
    // (IPv6 L4 checksum uses a different pseudo-header; the parsers do
    // not validate checksums, so we leave it zero for v6.)
    frame.insert(frame.end(), l4.begin(), l4.end());
  }
  return packet::Mbuf(std::move(frame), ts_ns);
}

}  // namespace

packet::Mbuf make_tcp_packet(const FlowEndpoints& ep, bool from_client,
                             std::uint32_t seq, std::uint32_t ack,
                             std::uint8_t flags,
                             std::span<const std::uint8_t> payload,
                             std::uint64_t ts_ns) {
  Bytes tcp(20);
  store_be16(tcp.data(), from_client ? ep.client_port : ep.server_port);
  store_be16(tcp.data() + 2, from_client ? ep.server_port : ep.client_port);
  store_be32(tcp.data() + 4, seq);
  store_be32(tcp.data() + 8, ack);
  tcp[12] = 0x50;  // data offset 5 words
  tcp[13] = flags;
  store_be16(tcp.data() + 14, 0xffff);  // window
  tcp.insert(tcp.end(), payload.begin(), payload.end());
  return finish_ip_frame(ep, from_client, packet::kIpProtoTcp, std::move(tcp),
                         16, ts_ns);
}

packet::Mbuf make_udp_packet(const FlowEndpoints& ep, bool from_client,
                             std::span<const std::uint8_t> payload,
                             std::uint64_t ts_ns) {
  Bytes udp(8);
  store_be16(udp.data(), from_client ? ep.client_port : ep.server_port);
  store_be16(udp.data() + 2, from_client ? ep.server_port : ep.client_port);
  store_be16(udp.data() + 4, static_cast<std::uint16_t>(8 + payload.size()));
  udp.insert(udp.end(), payload.begin(), payload.end());
  return finish_ip_frame(ep, from_client, packet::kIpProtoUdp, std::move(udp),
                         6, ts_ns);
}

packet::Mbuf make_raw_eth(std::uint16_t ether_type, std::size_t payload_len,
                          std::uint64_t ts_ns) {
  Bytes frame;
  append_eth_header(frame, ether_type);
  frame.resize(frame.size() + payload_len, 0xab);
  return packet::Mbuf(std::move(frame), ts_ns);
}

// ---------------------------------------------------------------------------
// TLS

namespace {

/// Wrap one handshake message into a TLS record.
Bytes wrap_handshake_record(std::uint8_t msg_type, const Bytes& body) {
  Bytes out;
  out.reserve(body.size() + 9);
  out.push_back(22);  // handshake
  append_be16(out, 0x0301);
  append_be16(out, static_cast<std::uint16_t>(body.size() + 4));
  out.push_back(msg_type);
  append_be24(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

Bytes build_tls_client_hello(const TlsClientHelloSpec& spec) {
  Bytes body;
  append_be16(body, spec.legacy_version);
  body.insert(body.end(), spec.random.begin(), spec.random.end());
  body.push_back(0);  // empty session id
  append_be16(body, static_cast<std::uint16_t>(spec.cipher_suites.size() * 2));
  for (const auto cs : spec.cipher_suites) append_be16(body, cs);
  body.push_back(1);  // compression methods
  body.push_back(0);  // null

  Bytes exts;
  if (!spec.sni.empty()) {
    Bytes ext;
    append_be16(ext, static_cast<std::uint16_t>(spec.sni.size() + 3));
    ext.push_back(0);  // host_name
    append_be16(ext, static_cast<std::uint16_t>(spec.sni.size()));
    append_str(ext, spec.sni);
    append_be16(exts, 0);  // server_name
    append_be16(exts, static_cast<std::uint16_t>(ext.size()));
    exts.insert(exts.end(), ext.begin(), ext.end());
  }
  if (!spec.alpn.empty()) {
    Bytes list;
    for (const auto& proto : spec.alpn) {
      list.push_back(static_cast<std::uint8_t>(proto.size()));
      append_str(list, proto);
    }
    append_be16(exts, 16);  // ALPN
    append_be16(exts, static_cast<std::uint16_t>(list.size() + 2));
    append_be16(exts, static_cast<std::uint16_t>(list.size()));
    exts.insert(exts.end(), list.begin(), list.end());
  }
  if (!spec.supported_versions.empty()) {
    append_be16(exts, 43);
    append_be16(exts,
                static_cast<std::uint16_t>(spec.supported_versions.size() * 2 +
                                           1));
    exts.push_back(
        static_cast<std::uint8_t>(spec.supported_versions.size() * 2));
    for (const auto v : spec.supported_versions) append_be16(exts, v);
  }
  append_be16(body, static_cast<std::uint16_t>(exts.size()));
  body.insert(body.end(), exts.begin(), exts.end());

  return wrap_handshake_record(1, body);
}

Bytes build_tls_server_hello(const TlsServerHelloSpec& spec) {
  Bytes body;
  append_be16(body, spec.legacy_version);
  body.insert(body.end(), spec.random.begin(), spec.random.end());
  body.push_back(0);  // empty session id
  append_be16(body, spec.cipher);
  body.push_back(0);  // null compression

  Bytes exts;
  if (!spec.supported_versions.empty()) {
    append_be16(exts, 43);
    append_be16(exts, 2);
    append_be16(exts, spec.supported_versions.front());
  }
  append_be16(body, static_cast<std::uint16_t>(exts.size()));
  body.insert(body.end(), exts.begin(), exts.end());

  return wrap_handshake_record(2, body);
}

Bytes build_tls_certificate(std::size_t count, std::size_t each_len) {
  Bytes body;
  const std::uint32_t list_len =
      static_cast<std::uint32_t>(count * (each_len + 3));
  append_be24(body, list_len);
  for (std::size_t i = 0; i < count; ++i) {
    append_be24(body, static_cast<std::uint32_t>(each_len));
    body.insert(body.end(), each_len, static_cast<std::uint8_t>(0x30));
  }
  return wrap_handshake_record(11, body);
}

Bytes build_tls_certificate_chain(const std::string& subject_cn,
                                  const std::string& issuer_cn,
                                  std::size_t extra_certs) {
  const auto leaf =
      protocols::build_minimal_certificate(subject_cn, issuer_cn);
  const auto intermediate =
      protocols::build_minimal_certificate(issuer_cn, "Synthetic Root CA");

  Bytes body;
  std::uint32_t list_len = static_cast<std::uint32_t>(leaf.size() + 3);
  list_len += static_cast<std::uint32_t>(
      extra_certs * (intermediate.size() + 3));
  append_be24(body, list_len);
  append_be24(body, static_cast<std::uint32_t>(leaf.size()));
  body.insert(body.end(), leaf.begin(), leaf.end());
  for (std::size_t i = 0; i < extra_certs; ++i) {
    append_be24(body, static_cast<std::uint32_t>(intermediate.size()));
    body.insert(body.end(), intermediate.begin(), intermediate.end());
  }
  return wrap_handshake_record(11, body);
}

Bytes build_tls_change_cipher_spec() {
  return Bytes{20, 0x03, 0x03, 0x00, 0x01, 0x01};
}

Bytes build_tls_application_data(std::size_t len) {
  Bytes out;
  out.reserve(len + 5);
  out.push_back(23);
  append_be16(out, 0x0303);
  append_be16(out, static_cast<std::uint16_t>(len));
  out.resize(out.size() + len, 0x5a);
  return out;
}

// ---------------------------------------------------------------------------
// HTTP

Bytes build_http_request(const HttpRequestSpec& spec) {
  std::string msg = spec.method + " " + spec.uri + " HTTP/1.1\r\n";
  msg += "Host: " + spec.host + "\r\n";
  msg += "User-Agent: " + spec.user_agent + "\r\n";
  for (const auto& [name, value] : spec.extra_headers) {
    msg += name + ": " + value + "\r\n";
  }
  msg += "\r\n";
  return Bytes(msg.begin(), msg.end());
}

Bytes build_http_response(const HttpResponseSpec& spec) {
  std::string head = "HTTP/1.1 " + std::to_string(spec.status) + " " +
                     spec.reason + "\r\n";
  head += "Content-Length: " + std::to_string(spec.content_length) + "\r\n";
  head += "Content-Type: application/octet-stream\r\n";
  for (const auto& [name, value] : spec.extra_headers) {
    head += name + ": " + value + "\r\n";
  }
  head += "\r\n";
  Bytes out(head.begin(), head.end());
  if (spec.include_body) {
    out.resize(out.size() + spec.content_length, 0x42);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SSH

Bytes build_ssh_banner(const std::string& software) {
  const std::string banner = "SSH-2.0-" + software + "\r\n";
  return Bytes(banner.begin(), banner.end());
}

Bytes build_ssh_kexinit(const std::vector<std::string>& kex_algos,
                        const std::vector<std::string>& host_key_algos) {
  Bytes payload;
  payload.push_back(20);  // SSH_MSG_KEXINIT
  payload.insert(payload.end(), 16, 0xaa);  // cookie

  auto append_name_list = [&payload](const std::vector<std::string>& names) {
    std::string joined;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) joined += ',';
      joined += names[i];
    }
    append_be32(payload, static_cast<std::uint32_t>(joined.size()));
    append_str(payload, joined);
  };
  append_name_list(kex_algos);
  append_name_list(host_key_algos);
  // Remaining 8 name-lists (encryption, MAC, compression, languages
  // both ways) left empty.
  for (int i = 0; i < 8; ++i) append_be32(payload, 0);
  payload.push_back(0);      // first_kex_packet_follows
  append_be32(payload, 0);   // reserved

  // Binary packet framing: length | padding_len | payload | padding.
  const std::uint8_t padding = 8;
  Bytes out;
  append_be32(out,
              static_cast<std::uint32_t>(payload.size() + 1 + padding));
  out.push_back(padding);
  out.insert(out.end(), payload.begin(), payload.end());
  out.insert(out.end(), padding, 0);
  return out;
}

// ---------------------------------------------------------------------------
// SMTP

Bytes build_smtp_client(const SmtpExchangeSpec& spec) {
  std::string msg = "EHLO " + spec.helo + "\r\n";
  if (spec.starttls) {
    msg += "STARTTLS\r\n";
  } else {
    msg += "MAIL FROM:<" + spec.mail_from + ">\r\n";
    for (const auto& rcpt : spec.rcpt_to) {
      msg += "RCPT TO:<" + rcpt + ">\r\n";
    }
    msg += "DATA\r\n";
    for (std::size_t i = 0; i < spec.body_lines; ++i) {
      msg += "This is line " + std::to_string(i) + " of the message body.\r\n";
    }
    msg += ".\r\nQUIT\r\n";
  }
  return Bytes(msg.begin(), msg.end());
}

Bytes build_smtp_server(const SmtpExchangeSpec& spec) {
  std::string msg = "220 " + spec.server_domain + " ESMTP ready\r\n";
  msg += "250-" + spec.server_domain + "\r\n250 STARTTLS\r\n";
  if (!spec.starttls) {
    msg += "250 OK\r\n";  // MAIL FROM
    for (std::size_t i = 0; i < spec.rcpt_to.size(); ++i) {
      msg += "250 OK\r\n";
    }
    msg += "354 go ahead\r\n250 queued\r\n221 bye\r\n";
  } else {
    msg += "220 ready for TLS\r\n";
  }
  return Bytes(msg.begin(), msg.end());
}

// ---------------------------------------------------------------------------
// DNS

namespace {

void append_qname(Bytes& out, const std::string& qname) {
  std::size_t start = 0;
  while (start <= qname.size()) {
    const auto dot = qname.find('.', start);
    const auto end = dot == std::string::npos ? qname.size() : dot;
    const auto len = end - start;
    out.push_back(static_cast<std::uint8_t>(len));
    out.insert(out.end(), qname.begin() + static_cast<std::ptrdiff_t>(start),
               qname.begin() + static_cast<std::ptrdiff_t>(end));
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  out.push_back(0);
}

}  // namespace

Bytes build_dns_query(std::uint16_t id, const std::string& qname,
                      std::uint16_t qtype) {
  Bytes out;
  append_be16(out, id);
  append_be16(out, 0x0100);  // RD
  append_be16(out, 1);       // QDCOUNT
  append_be16(out, 0);
  append_be16(out, 0);
  append_be16(out, 0);
  append_qname(out, qname);
  append_be16(out, qtype);
  append_be16(out, 1);  // IN
  return out;
}

Bytes build_dns_response(std::uint16_t id, const std::string& qname,
                         std::uint16_t qtype, std::uint16_t answers,
                         std::uint8_t rcode) {
  Bytes out;
  append_be16(out, id);
  append_be16(out, static_cast<std::uint16_t>(0x8180 | rcode));
  append_be16(out, 1);        // QDCOUNT
  append_be16(out, answers);  // ANCOUNT
  append_be16(out, 0);
  append_be16(out, 0);
  append_qname(out, qname);
  append_be16(out, qtype);
  append_be16(out, 1);
  for (std::uint16_t i = 0; i < answers; ++i) {
    append_be16(out, 0xc00c);  // pointer to qname
    append_be16(out, qtype);
    append_be16(out, 1);
    append_be32(out, 60);  // TTL
    append_be16(out, 4);   // RDLENGTH
    append_be32(out, 0x5db8d822 + i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TcpFlowCrafter

TcpFlowCrafter::TcpFlowCrafter(FlowEndpoints endpoints,
                               std::uint64_t start_ts_ns,
                               std::uint32_t client_isn,
                               std::uint32_t server_isn)
    : endpoints_(endpoints),
      ts_ns_(start_ts_ns),
      client_seq_(client_isn),
      server_seq_(server_isn) {}

void TcpFlowCrafter::emit(bool from_client, std::uint8_t flags,
                          std::span<const std::uint8_t> payload) {
  const std::uint32_t seq = from_client ? client_seq_ : server_seq_;
  const std::uint32_t ack = from_client ? server_seq_ : client_seq_;
  packets_.push_back(make_tcp_packet(endpoints_, from_client, seq, ack, flags,
                                     payload, ts_ns_));
  ts_ns_ += pkt_gap_ns_;

  std::uint32_t advance = static_cast<std::uint32_t>(payload.size());
  if (flags & packet::kTcpSyn) ++advance;
  if (flags & packet::kTcpFin) ++advance;
  (from_client ? client_seq_ : server_seq_) += advance;
}

TcpFlowCrafter& TcpFlowCrafter::handshake() {
  emit(true, packet::kTcpSyn, {});
  emit(false, packet::kTcpSyn | packet::kTcpAck, {});
  emit(true, packet::kTcpAck, {});
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::syn_only() {
  emit(true, packet::kTcpSyn, {});
  return *this;
}

void TcpFlowCrafter::send_data(bool from_client,
                               std::span<const std::uint8_t> payload) {
  std::size_t offset = 0;
  while (offset < payload.size()) {
    const std::size_t chunk = std::min(mss_, payload.size() - offset);
    emit(from_client, packet::kTcpAck | packet::kTcpPsh,
         payload.subspan(offset, chunk));
    offset += chunk;
    if (auto_ack_every_ > 0 && ++segs_since_ack_ >= auto_ack_every_) {
      segs_since_ack_ = 0;
      emit(!from_client, packet::kTcpAck, {});  // delayed ACK
    }
  }
}

TcpFlowCrafter& TcpFlowCrafter::client_send(
    std::span<const std::uint8_t> payload) {
  send_data(true, payload);
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::server_send(
    std::span<const std::uint8_t> payload) {
  send_data(false, payload);
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::close() {
  emit(true, packet::kTcpFin | packet::kTcpAck, {});
  emit(false, packet::kTcpFin | packet::kTcpAck, {});
  emit(true, packet::kTcpAck, {});
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::reset(bool from_client) {
  emit(from_client, packet::kTcpRst, {});
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::swap_last_two() {
  if (packets_.size() >= 2) {
    auto& a = packets_[packets_.size() - 2];
    auto& b = packets_[packets_.size() - 1];
    // Swap delivery order but keep timestamps monotone.
    const auto ts_a = a.timestamp_ns();
    const auto ts_b = b.timestamp_ns();
    std::swap(a, b);
    a.set_timestamp_ns(ts_a);
    b.set_timestamp_ns(ts_b);
  }
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::swap_last_two_data() {
  // Find the two most recent data packets.
  std::size_t found[2];
  std::size_t count = 0;
  for (std::size_t i = packets_.size(); i-- > 0 && count < 2;) {
    const auto view = packet::PacketView::parse(packets_[i]);
    if (view && !view->l4_payload().empty()) {
      found[count++] = i;
    }
  }
  if (count == 2) {
    auto& a = packets_[found[1]];  // earlier
    auto& b = packets_[found[0]];  // later
    const auto ts_a = a.timestamp_ns();
    const auto ts_b = b.timestamp_ns();
    std::swap(a, b);
    a.set_timestamp_ns(ts_a);
    b.set_timestamp_ns(ts_b);
  }
  return *this;
}

TcpFlowCrafter& TcpFlowCrafter::retransmit(std::size_t index) {
  if (index < packets_.size()) {
    packet::Mbuf copy = packets_[index];
    copy.set_timestamp_ns(ts_ns_);
    ts_ns_ += pkt_gap_ns_;
    packets_.push_back(std::move(copy));
  }
  return *this;
}

}  // namespace retina::traffic

// Named workloads matching the paper's experiments:
//  * HTTPS closed-loop requests (Fig. 6's wrk2+nginx testbed): parallel
//    connections issuing fixed-size HTTPS requests at a target rate.
//  * Video streaming sessions (Fig. 9 / §7.3): Netflix- and
//    YouTube-labeled TLS flows with session-scale byte volumes.
//  * "Normal user" traces (Appendix B): small desktop-like mixes
//    standing in for the Stratosphere CTU captures.
#pragma once

#include "traffic/flowgen.hpp"

namespace retina::traffic {

/// Fig. 6: 128-parallel closed-loop 256 KB HTTPS requests against one
/// server, mirrored to the monitor. `request_rate` scales how many
/// request flows the run contains per second of virtual time.
struct HttpsWorkloadConfig {
  std::uint64_t seed = 7;
  double requests_per_second = 1000.0;
  std::size_t parallel = 128;
  std::size_t response_bytes = 256 * 1024;
  std::size_t total_requests = 4'000;
  std::string sni = "bench.example.com";
};

InterleavedFlowGen make_https_workload(const HttpsWorkloadConfig& config);

/// §7.3 / Fig. 9: video streaming sessions. Each session opens several
/// parallel TLS flows to a video CDN domain and transfers a
/// session-scale (heavy-tailed, up to GBs) volume downstream.
struct VideoWorkloadConfig {
  std::uint64_t seed = 11;
  std::size_t sessions = 60;
  double sessions_per_second = 2.0;
  std::size_t max_active = 64;
  /// Weight of Netflix sessions vs YouTube (rest).
  double frac_netflix = 0.5;
  /// Session size distribution (bytes downstream, log-uniform range).
  double min_session_bytes = 2e6;
  double max_session_bytes = 2e9;
  /// Scale factor applied to session bytes so in-memory runs stay small
  /// while preserving the distribution *shape* (values are re-scaled
  /// back when reporting).
  double byte_scale = 1.0 / 256;
  /// Background campus traffic flows interleaved with the video flows.
  std::size_t background_flows = 2'000;
};

/// The SNI filter strings the paper uses for the two services.
inline constexpr const char* kNetflixFilter =
    "tcp.port = 443 and tls.sni ~ '(.+?\\.)?nflxvideo\\.net'";
inline constexpr const char* kYoutubeFilter =
    "tcp.port = 443 and tls.sni ~ 'googlevideo'";

InterleavedFlowGen make_video_workload(const VideoWorkloadConfig& config);

/// Appendix B: synthetic "normal user" traces with per-trace protocol
/// mixes loosely matching the four CTU-Normal captures. `variant` in
/// [0, 4).
Trace make_normal_user_trace(std::size_t variant, std::size_t flows = 1500,
                             std::uint64_t seed = 100);

/// Skewed elephant mix for the RSS rebalancer: every elephant flow's
/// five-tuple is chosen (by searching client ports under the symmetric
/// Toeplitz key) so its RETA bucket is owned by `hot_queue` under the
/// default `bucket % queues` layout, spread across that queue's
/// distinct buckets. Light mice flows land wherever RSS puts them.
/// Under static RSS one core processes all elephant bytes while its
/// siblings idle — the workload the rebalancer exists to fix.
struct ElephantWorkloadConfig {
  std::uint64_t seed = 17;
  /// Queue/core count the skew targets, and the RETA size. Must match
  /// the runtime the trace will be replayed into (RETA default 128).
  std::size_t queues = 8;
  std::size_t reta_size = 128;
  std::uint32_t hot_queue = 0;
  std::size_t elephants = 12;
  std::size_t elephant_bytes = 256 * 1024;  // server payload per elephant
  std::size_t mice = 200;
  std::size_t mice_bytes = 2'000;
  /// Start-time stagger between consecutive elephants.
  std::uint64_t stagger_ns = 2'000'000;
};

Trace make_elephant_trace(const ElephantWorkloadConfig& config);

}  // namespace retina::traffic

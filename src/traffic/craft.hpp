// Packet crafting: builds byte-accurate Ethernet/IPv4/IPv6/TCP/UDP
// frames with valid checksums, and real application payloads (TLS
// handshake records, HTTP messages, SSH banners/KEXINIT, DNS messages).
// This substitutes for the paper's live 100GbE tap: the parsers upstream
// consume exactly the same wire formats they would see in production.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "packet/five_tuple.hpp"
#include "packet/mbuf.hpp"

namespace retina::traffic {

using Bytes = std::vector<std::uint8_t>;

/// One endpoint pair; crafts frames in both directions.
struct FlowEndpoints {
  packet::IpAddr client_ip = packet::IpAddr::v4(0x0a000001);
  packet::IpAddr server_ip = packet::IpAddr::v4(0xc0a80001);
  std::uint16_t client_port = 40000;
  std::uint16_t server_port = 443;

  bool is_v6() const noexcept { return client_ip.version == 6; }
};

// ---------------------------------------------------------------------------
// Raw frame builders.

/// Build an Ethernet+IP+TCP frame. `from_client` selects direction.
packet::Mbuf make_tcp_packet(const FlowEndpoints& ep, bool from_client,
                             std::uint32_t seq, std::uint32_t ack,
                             std::uint8_t flags,
                             std::span<const std::uint8_t> payload,
                             std::uint64_t ts_ns);

/// Build an Ethernet+IP+UDP frame.
packet::Mbuf make_udp_packet(const FlowEndpoints& ep, bool from_client,
                             std::span<const std::uint8_t> payload,
                             std::uint64_t ts_ns);

/// An arbitrary non-IP Ethernet frame (filter edge cases).
packet::Mbuf make_raw_eth(std::uint16_t ether_type, std::size_t payload_len,
                          std::uint64_t ts_ns);

// ---------------------------------------------------------------------------
// TLS payloads.

struct TlsClientHelloSpec {
  std::string sni = "example.com";
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint16_t> cipher_suites = {0x1301, 0x1302, 0xc02f};
  std::vector<std::string> alpn = {};           // e.g. {"h2", "http/1.1"}
  std::vector<std::uint16_t> supported_versions = {};  // e.g. {0x0304}
};

struct TlsServerHelloSpec {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::uint16_t cipher = 0x1301;
  std::vector<std::uint16_t> supported_versions = {};
};

/// TLS record(s) carrying a ClientHello handshake message.
Bytes build_tls_client_hello(const TlsClientHelloSpec& spec);
Bytes build_tls_server_hello(const TlsServerHelloSpec& spec);
/// Certificate chain message: `count` certificates of `each_len` bytes.
Bytes build_tls_certificate(std::size_t count, std::size_t each_len);
/// Certificate chain whose leaf is a minimal-but-valid DER certificate
/// with the given subject/issuer common names.
Bytes build_tls_certificate_chain(const std::string& subject_cn,
                                  const std::string& issuer_cn,
                                  std::size_t extra_certs = 1);
Bytes build_tls_change_cipher_spec();
/// Opaque application-data record of `len` payload bytes.
Bytes build_tls_application_data(std::size_t len);

// ---------------------------------------------------------------------------
// HTTP payloads.

struct HttpRequestSpec {
  std::string method = "GET";
  std::string uri = "/";
  std::string host = "example.com";
  std::string user_agent = "retina-bench/1.0";
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

struct HttpResponseSpec {
  std::uint32_t status = 200;
  std::string reason = "OK";
  std::size_t content_length = 0;
  bool include_body = true;  // append content_length filler bytes
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

Bytes build_http_request(const HttpRequestSpec& spec);
Bytes build_http_response(const HttpResponseSpec& spec);

// ---------------------------------------------------------------------------
// SSH payloads.

Bytes build_ssh_banner(const std::string& software);  // "SSH-2.0-<software>\r\n"
Bytes build_ssh_kexinit(const std::vector<std::string>& kex_algos,
                        const std::vector<std::string>& host_key_algos);

// ---------------------------------------------------------------------------
// SMTP payloads.

struct SmtpExchangeSpec {
  std::string server_domain = "mail.example.com";
  std::string helo = "client.example.org";
  std::string mail_from = "alice@example.org";
  std::vector<std::string> rcpt_to = {"bob@example.com"};
  std::size_t body_lines = 5;
  bool starttls = false;  // issue STARTTLS instead of sending a message
};

/// Client-side bytes of a full SMTP envelope exchange.
Bytes build_smtp_client(const SmtpExchangeSpec& spec);
/// Server-side bytes (greeting + response codes).
Bytes build_smtp_server(const SmtpExchangeSpec& spec);

// ---------------------------------------------------------------------------
// DNS payloads.

Bytes build_dns_query(std::uint16_t id, const std::string& qname,
                      std::uint16_t qtype);
Bytes build_dns_response(std::uint16_t id, const std::string& qname,
                         std::uint16_t qtype, std::uint16_t answers,
                         std::uint8_t rcode = 0);

// ---------------------------------------------------------------------------
// Flow crafting: a full TCP conversation with correct seq/ack state,
// MSS-based segmentation, and hooks for out-of-order/retransmission
// injection (used to hit the Table 2 out-of-order targets).

class TcpFlowCrafter {
 public:
  TcpFlowCrafter(FlowEndpoints endpoints, std::uint64_t start_ts_ns,
                 std::uint32_t client_isn = 1000,
                 std::uint32_t server_isn = 9000);

  /// SYN / SYN-ACK / ACK exchange.
  TcpFlowCrafter& handshake();
  /// Only the SYN (the paper's 65% single-SYN case).
  TcpFlowCrafter& syn_only();

  /// Segment and send payload in one direction (with ACKs implied).
  TcpFlowCrafter& client_send(std::span<const std::uint8_t> payload);
  TcpFlowCrafter& server_send(std::span<const std::uint8_t> payload);

  /// Graceful close (FIN both ways) or abort.
  TcpFlowCrafter& close();
  TcpFlowCrafter& reset(bool from_client = true);

  /// Advance the virtual clock between events.
  TcpFlowCrafter& gap(std::uint64_t ns) {
    ts_ns_ += ns;
    return *this;
  }

  std::uint64_t now_ns() const noexcept { return ts_ns_; }
  std::size_t mss() const noexcept { return mss_; }
  TcpFlowCrafter& set_mss(std::size_t mss) {
    mss_ = mss;
    return *this;
  }
  /// Nanoseconds the clock advances per emitted packet.
  TcpFlowCrafter& set_pkt_gap(std::uint64_t ns) {
    pkt_gap_ns_ = ns;
    return *this;
  }

  /// Emit a pure ACK from the receiver after every `n` data segments
  /// (0 disables). Real stacks ACK every other segment, which is what
  /// produces the minimum-size mode of the packet-size distribution
  /// (paper Fig. 13).
  TcpFlowCrafter& set_auto_ack(std::size_t n) {
    auto_ack_every_ = n;
    return *this;
  }

  /// Swap the last two emitted packets (inject reordering).
  TcpFlowCrafter& swap_last_two();

  /// Swap the last two *payload-bearing* packets (pure ACKs between
  /// them are left in place), guaranteeing a visible sequence
  /// regression on the wire.
  TcpFlowCrafter& swap_last_two_data();

  /// Re-emit the packet at `index` with a bumped timestamp (inject a
  /// retransmission).
  TcpFlowCrafter& retransmit(std::size_t index);

  std::vector<packet::Mbuf>& packets() noexcept { return packets_; }
  std::vector<packet::Mbuf> take() { return std::move(packets_); }

 private:
  void emit(bool from_client, std::uint8_t flags,
            std::span<const std::uint8_t> payload);
  void send_data(bool from_client, std::span<const std::uint8_t> payload);

  FlowEndpoints endpoints_;
  std::uint64_t ts_ns_;
  std::uint64_t pkt_gap_ns_ = 50'000;  // 50us between packets
  std::size_t mss_ = 1448;
  std::size_t auto_ack_every_ = 2;
  std::size_t segs_since_ack_ = 0;
  std::uint32_t client_seq_;
  std::uint32_t server_seq_;
  std::vector<packet::Mbuf> packets_;
};

}  // namespace retina::traffic

#include "traffic/trace.hpp"

#include <algorithm>

namespace retina::traffic {

void Trace::append(std::vector<packet::Mbuf> packets) {
  packets_.insert(packets_.end(), std::make_move_iterator(packets.begin()),
                  std::make_move_iterator(packets.end()));
}

void Trace::sort_by_time() {
  std::stable_sort(packets_.begin(), packets_.end(),
                   [](const packet::Mbuf& a, const packet::Mbuf& b) {
                     return a.timestamp_ns() < b.timestamp_ns();
                   });
}

std::uint64_t Trace::total_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& mbuf : packets_) bytes += mbuf.length();
  return bytes;
}

std::uint64_t Trace::duration_ns() const {
  if (packets_.size() < 2) return 0;
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& mbuf : packets_) {
    lo = std::min(lo, mbuf.timestamp_ns());
    hi = std::max(hi, mbuf.timestamp_ns());
  }
  return hi - lo;
}

double Trace::avg_packet_bytes() const {
  if (packets_.empty()) return 0.0;
  return static_cast<double>(total_bytes()) /
         static_cast<double>(packets_.size());
}

}  // namespace retina::traffic

#include "traffic/flowgen.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace retina::traffic {

// ---------------------------------------------------------------------------
// InterleavedFlowGen

InterleavedFlowGen::InterleavedFlowGen(FlowFactory factory,
                                       std::size_t total_flows,
                                       double flows_per_second,
                                       std::size_t max_active,
                                       std::uint64_t seed)
    : factory_(std::move(factory)),
      total_flows_(total_flows),
      interarrival_ns_(flows_per_second > 0
                           ? static_cast<std::uint64_t>(1e9 / flows_per_second)
                           : 1'000'000),
      max_active_(std::max<std::size_t>(max_active, 1)),
      rng_(seed) {
  spawn_ready();
}

void InterleavedFlowGen::spawn_ready() {
  while (flows_started_ < total_flows_ &&
         heap_.size() < max_active_) {
    auto packets = factory_(next_start_ts_, rng_);
    // Jittered Poisson-ish arrivals.
    next_start_ts_ += interarrival_ns_ / 2 +
                      rng_.below(interarrival_ns_ + 1);
    ++flows_started_;
    if (packets.empty()) continue;

    std::size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = ActiveFlow{std::move(packets), 0};
    } else {
      slot = slots_.size();
      slots_.push_back(ActiveFlow{std::move(packets), 0});
    }
    heap_.push(HeapItem{slots_[slot].packets.front().timestamp_ns(), slot});
  }
}

bool InterleavedFlowGen::next(packet::Mbuf& out) {
  if (heap_.empty()) return false;
  const auto item = heap_.top();
  heap_.pop();

  auto& flow = slots_[item.slot];
  out = std::move(flow.packets[flow.index]);
  ++flow.index;
  ++packets_emitted_;

  if (flow.index < flow.packets.size()) {
    heap_.push(
        HeapItem{flow.packets[flow.index].timestamp_ns(), item.slot});
  } else {
    flow.packets.clear();
    flow.packets.shrink_to_fit();
    free_slots_.push_back(item.slot);
    spawn_ready();
  }
  return true;
}

Trace InterleavedFlowGen::materialize() {
  Trace trace;
  packet::Mbuf mbuf;
  while (next(mbuf)) trace.append(std::move(mbuf));
  return trace;
}

// ---------------------------------------------------------------------------
// Campus profile

const std::array<std::uint8_t, 32>& anomalous_client_random() {
  // The paper's most frequent anomalous nonce begins 738b712a... and
  // ends ...dee0dbe1; fill the middle deterministically.
  static const std::array<std::uint8_t, 32> value = [] {
    std::array<std::uint8_t, 32> v{};
    const std::uint8_t head[4] = {0x73, 0x8b, 0x71, 0x2a};
    const std::uint8_t tail[4] = {0xde, 0xe0, 0xdb, 0xe1};
    for (int i = 0; i < 4; ++i) v[static_cast<std::size_t>(i)] = head[i];
    for (std::size_t i = 4; i < 28; ++i) {
      v[i] = static_cast<std::uint8_t>(0x40 + i);
    }
    for (int i = 0; i < 4; ++i) v[28 + static_cast<std::size_t>(i)] = tail[i];
    return v;
  }();
  return value;
}

std::vector<std::pair<std::string, double>> default_sni_catalog() {
  return {
      {"www.google.com", 9.0},
      {"fonts.gstatic.com", 4.0},
      {"www.youtube.com", 3.5},
      {"rr4---sn-abc.googlevideo.com", 5.0},
      {"occ-0-1.1.nflxso.net", 1.0},
      {"ipv4-c001.1.nflxvideo.net", 3.0},
      {"www.netflix.com", 1.0},
      {"api.twitter.com", 2.0},
      {"static.xx.fbcdn.net", 3.0},
      {"www.facebook.com", 2.5},
      {"a.espncdn.com", 1.0},
      {"cdn.jsdelivr.net", 1.5},
      {"github.com", 1.5},
      {"codeload.github.com", 0.5},
      {"www.instagram.com", 2.0},
      {"i.redd.it", 1.5},
      {"www.reddit.com", 1.5},
      {"outlook.office365.com", 2.5},
      {"login.microsoftonline.com", 2.0},
      {"www.wikipedia.org", 1.0},
      {"en.wikipedia.org", 1.5},
      {"apps.apple.com", 1.0},
      {"gateway.icloud.com", 2.0},
      {"www.amazon.com", 2.0},
      {"images-na.ssl-images-amazon.com", 1.5},
      {"cdn.cloudflare.net", 1.0},
      {"zoom.us", 1.5},
      {"canvas.university.edu", 2.5},
      {"mail.university.edu", 2.0},
      {"telemetry.example.org", 0.8},
      {"updates.example.io", 0.6},
      {"ads.doubleclick.net", 1.8},
  };
}

namespace {

struct CatalogSampler {
  std::vector<std::pair<std::string, double>> entries;
  double total_weight = 0;

  explicit CatalogSampler(std::vector<std::pair<std::string, double>> e)
      : entries(std::move(e)) {
    for (const auto& [name, weight] : entries) total_weight += weight;
  }

  const std::string& sample(util::Xoshiro256& rng) const {
    double target = rng.uniform() * total_weight;
    for (const auto& [name, weight] : entries) {
      target -= weight;
      if (target <= 0) return name;
    }
    return entries.back().first;
  }
};

packet::IpAddr random_v4(util::Xoshiro256& rng, bool campus_side) {
  // Campus clients live in 171.64.0.0/14-ish space; servers anywhere.
  if (campus_side) {
    return packet::IpAddr::v4(0xab400000u | static_cast<std::uint32_t>(
                                                rng.below(1u << 18)));
  }
  std::uint32_t addr;
  do {
    addr = static_cast<std::uint32_t>(rng.next());
  } while ((addr >> 24) == 0 || (addr >> 24) == 10 || (addr >> 24) >= 224);
  return packet::IpAddr::v4(addr);
}

packet::IpAddr random_v6(util::Xoshiro256& rng) {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0x26;
  bytes[1] = 0x07;
  for (std::size_t i = 2; i < 16; ++i) {
    bytes[i] = static_cast<std::uint8_t>(rng.next());
  }
  return packet::IpAddr::v6(bytes);
}

FlowEndpoints random_endpoints(util::Xoshiro256& rng, bool ipv6,
                               std::uint16_t server_port) {
  FlowEndpoints ep;
  if (ipv6) {
    ep.client_ip = random_v6(rng);
    ep.server_ip = random_v6(rng);
  } else {
    ep.client_ip = random_v4(rng, /*campus_side=*/true);
    ep.server_ip = random_v4(rng, /*campus_side=*/false);
  }
  ep.client_port = static_cast<std::uint16_t>(rng.range(32768, 60999));
  ep.server_port = server_port;
  return ep;
}

std::array<std::uint8_t, 32> random_nonce(util::Xoshiro256& rng) {
  std::array<std::uint8_t, 32> nonce;
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next());
  return nonce;
}

class CampusFactory {
 public:
  explicit CampusFactory(CampusMixConfig config)
      : config_(std::move(config)),
        catalog_(config_.sni_catalog.empty() ? default_sni_catalog()
                                             : config_.sni_catalog) {}

  std::vector<packet::Mbuf> operator()(std::uint64_t start_ts,
                                       util::Xoshiro256& rng) const {
    const double roll = rng.uniform();
    if (roll < config_.frac_other_l3) {
      return {make_raw_eth(0x0806 /*ARP*/, 46, start_ts)};
    }
    if (roll < config_.frac_other_l3 + config_.frac_udp) {
      return udp_flow(start_ts, rng);
    }
    // TCP.
    if (rng.chance(config_.frac_single_syn)) {
      auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6),
                                 common_port(rng));
      TcpFlowCrafter crafter(ep, start_ts,
                             static_cast<std::uint32_t>(rng.next()),
                             static_cast<std::uint32_t>(rng.next()));
      return crafter.syn_only().take();
    }
    const double app = rng.uniform();
    if (app < config_.frac_tls) return tls_flow(start_ts, rng);
    if (app < config_.frac_tls + config_.frac_http)
      return http_flow(start_ts, rng);
    if (app < config_.frac_tls + config_.frac_http + config_.frac_ssh)
      return ssh_flow(start_ts, rng);
    if (app < config_.frac_tls + config_.frac_http + config_.frac_ssh +
                  config_.frac_smtp)
      return smtp_flow(start_ts, rng);
    return opaque_flow(start_ts, rng);
  }

 private:
  std::uint16_t common_port(util::Xoshiro256& rng) const {
    static const std::uint16_t ports[] = {443, 80, 22, 25, 8443, 8080};
    return ports[rng.below(6)];
  }

  std::size_t response_size(util::Xoshiro256& rng) const {
    return static_cast<std::size_t>(rng.pareto(
        config_.resp_min_bytes, config_.pareto_alpha, config_.resp_max_bytes));
  }

  void maybe_reorder(TcpFlowCrafter& crafter, util::Xoshiro256& rng) const {
    if (rng.chance(config_.frac_ooo_flows)) {
      crafter.swap_last_two_data();
      if (rng.chance(0.3) && !crafter.packets().empty()) {
        crafter.retransmit(crafter.packets().size() / 2);
      }
    }
  }

  std::vector<packet::Mbuf> tls_flow(std::uint64_t start_ts,
                                     util::Xoshiro256& rng) const {
    auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6), 443);
    TcpFlowCrafter crafter(ep, start_ts,
                           static_cast<std::uint32_t>(rng.next()),
                           static_cast<std::uint32_t>(rng.next()));
    crafter.handshake();

    TlsClientHelloSpec hello;
    hello.sni = catalog_.sample(rng);
    hello.random = random_nonce(rng);
    if (config_.nonce_anomalies) {
      if (rng.chance(config_.frac_repeated_nonce)) {
        hello.random = anomalous_client_random();
      } else if (rng.chance(config_.frac_zero_nonce)) {
        hello.random.fill(0);
      }
    }
    const bool tls13 = rng.chance(0.6);
    if (tls13) hello.supported_versions = {0x0304};
    hello.alpn = {"h2", "http/1.1"};
    crafter.client_send(build_tls_client_hello(hello));

    TlsServerHelloSpec server;
    server.random = random_nonce(rng);
    server.cipher = tls13 ? 0x1301 : 0xc02f;
    if (tls13) server.supported_versions = {0x0304};
    auto server_bytes = build_tls_server_hello(server);
    if (!tls13) {
      std::string subject = hello.sni;
      std::string issuer = "Synthetic CA R3";
      if (rng.chance(config_.frac_cert_mismatch)) {
        subject = "proxy-" + std::to_string(rng.below(100)) +
                  ".intercept.example";
        issuer = "Suspicious Middlebox CA";
      }
      auto cert = build_tls_certificate_chain(subject, issuer,
                                              1 + rng.below(2));
      server_bytes.insert(server_bytes.end(), cert.begin(), cert.end());
    }
    auto ccs = build_tls_change_cipher_spec();
    server_bytes.insert(server_bytes.end(), ccs.begin(), ccs.end());
    crafter.server_send(server_bytes);

    // Encrypted application traffic: request up, heavy tail down.
    crafter.client_send(build_tls_application_data(300 + rng.below(700)));
    std::size_t remaining = response_size(rng);
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(remaining, 16'000);
      crafter.server_send(build_tls_application_data(chunk));
      remaining -= chunk;
    }
    maybe_reorder(crafter, rng);
    if (!rng.chance(config_.frac_no_close)) {
      rng.chance(0.1) ? crafter.reset(rng.chance(0.5)) : crafter.close();
    }
    return crafter.take();
  }

  std::vector<packet::Mbuf> http_flow(std::uint64_t start_ts,
                                      util::Xoshiro256& rng) const {
    auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6), 80);
    TcpFlowCrafter crafter(ep, start_ts,
                           static_cast<std::uint32_t>(rng.next()),
                           static_cast<std::uint32_t>(rng.next()));
    crafter.handshake();
    const std::size_t transactions = 1 + rng.below(3);
    static const char* kAgents[] = {
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Firefox/121.0",
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 13_2) Safari/605.1.15",
        "curl/8.4.0", "python-requests/2.31",
        "Mozilla/5.0 (X11; Linux x86_64) Chrome/120.0"};
    for (std::size_t t = 0; t < transactions; ++t) {
      HttpRequestSpec req;
      req.uri = "/asset/" + std::to_string(rng.below(100000));
      req.host = catalog_.sample(rng);
      req.user_agent = kAgents[rng.below(5)];
      crafter.client_send(build_http_request(req));
      HttpResponseSpec resp;
      resp.content_length = response_size(rng) / 4;
      crafter.server_send(build_http_response(resp));
    }
    maybe_reorder(crafter, rng);
    if (!rng.chance(config_.frac_no_close)) crafter.close();
    return crafter.take();
  }

  std::vector<packet::Mbuf> ssh_flow(std::uint64_t start_ts,
                                     util::Xoshiro256& rng) const {
    auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6), 22);
    TcpFlowCrafter crafter(ep, start_ts,
                           static_cast<std::uint32_t>(rng.next()),
                           static_cast<std::uint32_t>(rng.next()));
    crafter.handshake();
    crafter.client_send(build_ssh_banner("OpenSSH_9.3"));
    crafter.server_send(build_ssh_banner("OpenSSH_8.9p1 Ubuntu-3"));
    crafter.client_send(build_ssh_kexinit(
        {"curve25519-sha256", "diffie-hellman-group14-sha256"},
        {"ssh-ed25519", "rsa-sha2-512"}));
    // Opaque encrypted session afterwards.
    std::size_t remaining = response_size(rng) / 8;
    Bytes blob(1024, 0x7f);
    while (remaining > 1024) {
      crafter.server_send(blob);
      remaining -= 1024;
    }
    if (!rng.chance(config_.frac_no_close)) crafter.close();
    return crafter.take();
  }

  std::vector<packet::Mbuf> smtp_flow(std::uint64_t start_ts,
                                      util::Xoshiro256& rng) const {
    auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6), 25);
    TcpFlowCrafter crafter(ep, start_ts,
                           static_cast<std::uint32_t>(rng.next()),
                           static_cast<std::uint32_t>(rng.next()));
    crafter.handshake();
    SmtpExchangeSpec spec;
    spec.helo = "host" + std::to_string(rng.below(1000)) + ".example.org";
    spec.mail_from =
        "user" + std::to_string(rng.below(5000)) + "@example.org";
    spec.rcpt_to = {"rcpt" + std::to_string(rng.below(5000)) +
                    "@example.com"};
    spec.body_lines = 3 + rng.below(40);
    spec.starttls = rng.chance(0.3);
    // Server greets first, then the exchange proceeds.
    const auto server = build_smtp_server(spec);
    const auto client = build_smtp_client(spec);
    crafter.server_send(
        std::span<const std::uint8_t>(server.data(), 30));  // greeting
    crafter.client_send(client);
    crafter.server_send(
        std::span<const std::uint8_t>(server.data() + 30,
                                      server.size() - 30));
    if (!rng.chance(config_.frac_no_close)) crafter.close();
    return crafter.take();
  }

  std::vector<packet::Mbuf> opaque_flow(std::uint64_t start_ts,
                                        util::Xoshiro256& rng) const {
    auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6),
                               static_cast<std::uint16_t>(
                                   rng.range(1024, 65000)));
    TcpFlowCrafter crafter(ep, start_ts,
                           static_cast<std::uint32_t>(rng.next()),
                           static_cast<std::uint32_t>(rng.next()));
    crafter.handshake();
    Bytes blob(200 + rng.below(1200));
    for (auto& b : blob) b = static_cast<std::uint8_t>(0x80 | rng.below(0x60));
    crafter.client_send(blob);
    std::size_t remaining = response_size(rng) / 8;
    Bytes chunk(1400, 0x9c);
    while (remaining > chunk.size()) {
      crafter.server_send(chunk);
      remaining -= chunk.size();
    }
    maybe_reorder(crafter, rng);
    if (!rng.chance(config_.frac_no_close)) crafter.close();
    return crafter.take();
  }

  std::vector<packet::Mbuf> udp_flow(std::uint64_t start_ts,
                                     util::Xoshiro256& rng) const {
    std::vector<packet::Mbuf> out;
    if (rng.chance(0.7)) {
      // DNS query/response.
      auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6), 53);
      const auto id = static_cast<std::uint16_t>(rng.next());
      const auto qname = catalog_.sample(rng);
      out.push_back(make_udp_packet(ep, true,
                                    build_dns_query(id, qname, 1), start_ts));
      out.push_back(make_udp_packet(
          ep, false,
          build_dns_response(id, qname, 1,
                             static_cast<std::uint16_t>(1 + rng.below(3))),
          start_ts + 2'000'000));
    } else {
      // QUIC-like opaque UDP on 443. Kept short so TCP carries the bulk
      // of bytes (Table 2: 72.4% of bytes in TCP streams).
      auto ep = random_endpoints(rng, rng.chance(config_.frac_ipv6), 443);
      std::uint64_t ts = start_ts;
      const std::size_t pkts = 3 + rng.below(10);
      Bytes blob(1200, 0xee);
      blob[0] = 0xc3;  // QUIC long header-ish first byte
      for (std::size_t i = 0; i < pkts; ++i) {
        out.push_back(make_udp_packet(ep, i % 3 != 0, blob, ts));
        ts += 80'000;
      }
    }
    return out;
  }

  CampusMixConfig config_;
  CatalogSampler catalog_;
};

}  // namespace

FlowFactory make_campus_factory(const CampusMixConfig& config) {
  auto factory = std::make_shared<CampusFactory>(config);
  return [factory](std::uint64_t start_ts, util::Xoshiro256& rng) {
    return (*factory)(start_ts, rng);
  };
}

InterleavedFlowGen make_campus_gen(const CampusMixConfig& config) {
  return InterleavedFlowGen(make_campus_factory(config), config.total_flows,
                            config.flows_per_second, config.max_active,
                            config.seed);
}

Trace make_campus_trace(const CampusMixConfig& config) {
  auto gen = make_campus_gen(config);
  auto trace = gen.materialize();
  trace.sort_by_time();
  return trace;
}

}  // namespace retina::traffic

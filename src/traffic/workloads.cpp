#include "traffic/workloads.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <set>

#include "nic/rss.hpp"

namespace retina::traffic {

InterleavedFlowGen make_https_workload(const HttpsWorkloadConfig& config) {
  const auto cfg = std::make_shared<HttpsWorkloadConfig>(config);
  FlowFactory factory = [cfg](std::uint64_t start_ts,
                              util::Xoshiro256& rng) {
    FlowEndpoints ep;
    ep.client_ip = packet::IpAddr::v4(0x0a000000u |
                                      static_cast<std::uint32_t>(
                                          rng.below(cfg->parallel) + 2));
    ep.server_ip = packet::IpAddr::v4(0x0a000001);
    ep.client_port = static_cast<std::uint16_t>(rng.range(30000, 60000));
    ep.server_port = 443;

    TcpFlowCrafter crafter(ep, start_ts,
                           static_cast<std::uint32_t>(rng.next()),
                           static_cast<std::uint32_t>(rng.next()));
    crafter.handshake();

    TlsClientHelloSpec hello;
    hello.sni = cfg->sni;
    for (auto& b : hello.random) b = static_cast<std::uint8_t>(rng.next());
    hello.supported_versions = {0x0304};
    crafter.client_send(build_tls_client_hello(hello));

    TlsServerHelloSpec server;
    for (auto& b : server.random) b = static_cast<std::uint8_t>(rng.next());
    server.supported_versions = {0x0304};
    auto server_bytes = build_tls_server_hello(server);
    auto ccs = build_tls_change_cipher_spec();
    server_bytes.insert(server_bytes.end(), ccs.begin(), ccs.end());
    crafter.server_send(server_bytes);

    // Encrypted request + fixed-size response (the 256 KB object).
    crafter.client_send(build_tls_application_data(400));
    std::size_t remaining = cfg->response_bytes;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(remaining, 16'000);
      crafter.server_send(build_tls_application_data(chunk));
      remaining -= chunk;
    }
    crafter.close();
    return crafter.take();
  };
  return InterleavedFlowGen(std::move(factory), config.total_requests,
                            config.requests_per_second,
                            std::max<std::size_t>(config.parallel, 1),
                            config.seed);
}

InterleavedFlowGen make_video_workload(const VideoWorkloadConfig& config) {
  const auto cfg = std::make_shared<VideoWorkloadConfig>(config);
  // Background campus factory shared across invocations.
  CampusMixConfig campus;
  campus.seed = config.seed * 13 + 1;
  const auto background = std::make_shared<FlowFactory>(
      make_campus_factory(campus));

  // Every Nth flow is a video session; the rest are background noise.
  const std::size_t total_flows = config.sessions + config.background_flows;
  const double video_share =
      static_cast<double>(config.sessions) /
      static_cast<double>(std::max<std::size_t>(total_flows, 1));

  // Deterministic-proportional service split so small runs still carry
  // both services in the configured ratio.
  const auto session_counter = std::make_shared<std::size_t>(0);

  FlowFactory factory = [cfg, background, video_share, session_counter](
                            std::uint64_t start_ts, util::Xoshiro256& rng) {
    if (!rng.chance(video_share)) {
      return (*background)(start_ts, rng);
    }

    const auto session_index = (*session_counter)++;
    const bool netflix =
        std::fmod(static_cast<double>(session_index) * cfg->frac_netflix,
                  1.0) +
            cfg->frac_netflix >
        1.0 - 1e-9;
    const std::string sni =
        netflix ? "ipv4-c" + std::to_string(rng.below(100)) +
                      ".1.nflxvideo.net"
                : "rr" + std::to_string(rng.below(10)) +
                      "---sn-video.googlevideo.com";

    // Log-uniform session volume, scaled down for in-memory runs.
    const double log_lo = std::log(cfg->min_session_bytes);
    const double log_hi = std::log(cfg->max_session_bytes);
    const double session_bytes =
        std::exp(log_lo + rng.uniform() * (log_hi - log_lo));
    const auto scaled =
        static_cast<std::size_t>(session_bytes * cfg->byte_scale);

    // A video session opens several parallel flows (Bronzino et al.
    // count parallel flows as a feature); we emit them as one crafted
    // sequence per flow, interleaved by the generator.
    const std::size_t flows = 1 + rng.below(4);
    // One client endpoint per session: its parallel flows share it (the
    // feature-extraction apps aggregate flows into sessions by client).
    const auto client_ip = packet::IpAddr::v4(
        0xab400000u | static_cast<std::uint32_t>(rng.below(1u << 18)));
    std::vector<packet::Mbuf> all;
    for (std::size_t f = 0; f < flows; ++f) {
      FlowEndpoints ep;
      ep.client_ip = client_ip;
      ep.server_ip = packet::IpAddr::v4(
          (netflix ? 0x17f60000u : 0xadc20000u) |
          static_cast<std::uint32_t>(rng.below(1u << 16)));
      ep.client_port = static_cast<std::uint16_t>(rng.range(32768, 60999));
      ep.server_port = 443;

      TcpFlowCrafter crafter(ep, start_ts + f * 3'000'000,
                             static_cast<std::uint32_t>(rng.next()),
                             static_cast<std::uint32_t>(rng.next()));
      crafter.set_pkt_gap(120'000);
      crafter.handshake();

      TlsClientHelloSpec hello;
      hello.sni = sni;
      for (auto& b : hello.random) b = static_cast<std::uint8_t>(rng.next());
      hello.supported_versions = {0x0304};
      crafter.client_send(build_tls_client_hello(hello));

      TlsServerHelloSpec server;
      for (auto& b : server.random) b = static_cast<std::uint8_t>(rng.next());
      server.supported_versions = {0x0304};
      auto sh = build_tls_server_hello(server);
      auto ccs = build_tls_change_cipher_spec();
      sh.insert(sh.end(), ccs.begin(), ccs.end());
      crafter.server_send(sh);

      // Segment-sized bursts downstream; small requests upstream.
      std::size_t remaining = scaled / flows;
      while (remaining > 0) {
        crafter.client_send(build_tls_application_data(200));
        const std::size_t burst = std::min<std::size_t>(remaining, 64'000);
        std::size_t sent = 0;
        while (sent < burst) {
          const std::size_t chunk = std::min<std::size_t>(burst - sent, 16'000);
          crafter.server_send(build_tls_application_data(chunk));
          sent += chunk;
        }
        remaining -= burst;
        crafter.gap(30'000'000);  // inter-burst pacing
      }
      if (rng.chance(0.05)) crafter.swap_last_two();
      crafter.close();
      auto pkts = crafter.take();
      all.insert(all.end(), std::make_move_iterator(pkts.begin()),
                 std::make_move_iterator(pkts.end()));
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const packet::Mbuf& a, const packet::Mbuf& b) {
                       return a.timestamp_ns() < b.timestamp_ns();
                     });
    return all;
  };

  return InterleavedFlowGen(std::move(factory), total_flows,
                            config.sessions_per_second /
                                std::max(video_share, 1e-9),
                            config.max_active, config.seed);
}

Trace make_normal_user_trace(std::size_t variant, std::size_t flows,
                             std::uint64_t seed) {
  CampusMixConfig config;
  config.seed = seed + variant * 977;
  config.total_flows = flows;
  config.flows_per_second = 400.0;
  config.max_active = 64;
  config.frac_single_syn = 0.05;  // desktop captures, not scan-heavy
  config.resp_max_bytes = 400'000;

  switch (variant % 4) {
    case 0:  // browsing-heavy
      config.frac_tls = 0.60;
      config.frac_http = 0.25;
      config.frac_udp = 0.25;
      break;
    case 1:  // heavy DNS + short flows
      config.frac_udp = 0.45;
      config.frac_tls = 0.45;
      config.frac_http = 0.35;
      config.resp_max_bytes = 120'000;
      break;
    case 2:  // bulk downloads
      config.frac_udp = 0.15;
      config.frac_tls = 0.50;
      config.frac_http = 0.40;
      config.resp_max_bytes = 2'000'000;
      break;
    default:  // mixed with ssh
      config.frac_ssh = 0.10;
      config.frac_tls = 0.50;
      config.frac_http = 0.20;
      break;
  }
  return make_campus_trace(config);
}

namespace {

/// Smallest client port >= `start` whose five-tuple lands in a RETA
/// bucket owned by `hot_queue` under the default layout, preferring
/// buckets not in `used` so elephants spread over the hot queue's
/// buckets (movable independently by the rebalancer).
std::uint16_t find_hot_port(const FlowEndpoints& ep, std::uint16_t start,
                            const ElephantWorkloadConfig& config,
                            const std::array<std::uint8_t, 40>& key,
                            std::set<std::size_t>& used) {
  std::uint16_t fallback = 0;
  for (std::uint32_t port = start; port < 65535; ++port) {
    packet::FiveTuple tuple;
    tuple.src = ep.client_ip;
    tuple.dst = ep.server_ip;
    tuple.src_port = static_cast<std::uint16_t>(port);
    tuple.dst_port = ep.server_port;
    tuple.proto = 6;
    const auto bucket = nic::rss_hash(tuple, key) % config.reta_size;
    if (bucket % config.queues != config.hot_queue) continue;
    if (used.insert(bucket).second) {
      return static_cast<std::uint16_t>(port);
    }
    if (fallback == 0) fallback = static_cast<std::uint16_t>(port);
  }
  return fallback ? fallback : start;  // reuse a bucket if all are taken
}

}  // namespace

Trace make_elephant_trace(const ElephantWorkloadConfig& config) {
  const auto key = nic::symmetric_rss_key();
  util::Xoshiro256 rng(config.seed);
  Trace trace;
  std::set<std::size_t> used_buckets;

  const std::vector<std::uint8_t> elephant_payload(config.elephant_bytes,
                                                   0xab);
  std::uint16_t next_port = 20'000;
  for (std::size_t i = 0; i < config.elephants; ++i) {
    FlowEndpoints ep;
    ep.client_ip = packet::IpAddr::v4(0x0a000010 + static_cast<std::uint32_t>(i));
    ep.server_ip = packet::IpAddr::v4(0xc0a80050);
    ep.server_port = 443;
    ep.client_port = find_hot_port(ep, next_port, config, key, used_buckets);
    next_port = static_cast<std::uint16_t>(ep.client_port + 1);

    TcpFlowCrafter crafter(ep, 1'000'000 + i * config.stagger_ns);
    crafter.set_pkt_gap(20'000)
        .handshake()
        .server_send(elephant_payload)
        .close();
    trace.append(crafter.take());
  }

  const std::vector<std::uint8_t> mouse_payload(config.mice_bytes, 0x5c);
  for (std::size_t i = 0; i < config.mice; ++i) {
    FlowEndpoints ep;
    ep.client_ip = packet::IpAddr::v4(
        0x0a010000 + static_cast<std::uint32_t>(rng.below(1 << 16)));
    ep.server_ip = packet::IpAddr::v4(0xc0a80051);
    ep.server_port = 80;
    ep.client_port = static_cast<std::uint16_t>(rng.range(30'000, 60'000));

    const auto span = config.elephants
                          ? config.elephants * config.stagger_ns
                          : config.stagger_ns;
    TcpFlowCrafter crafter(ep, 1'000'000 + rng.below(span));
    crafter.handshake().server_send(mouse_payload).close();
    trace.append(crafter.take());
  }

  trace.sort_by_time();
  return trace;
}

}  // namespace retina::traffic

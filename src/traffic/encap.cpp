#include "traffic/encap.hpp"

#include <cstring>

#include "packet/checksum.hpp"
#include "packet/headers.hpp"
#include "packet/packet_view.hpp"
#include "util/bytes.hpp"

namespace retina::traffic {

namespace {

using Bytes = std::vector<std::uint8_t>;
using util::store_be16;
using util::store_be32;

void append_be16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_be32(Bytes& out, std::uint32_t v) {
  append_be16(out, static_cast<std::uint16_t>(v >> 16));
  append_be16(out, static_cast<std::uint16_t>(v));
}

/// Outer Ethernet header for tunnel transports: distinct synthetic MACs
/// so outer and inner frames are visibly different on the wire.
void append_tunnel_eth(Bytes& out, std::uint16_t ether_type) {
  static const std::uint8_t dst[6] = {0x02, 0x00, 0x00, 0x00, 0x01, 0x02};
  static const std::uint8_t src[6] = {0x02, 0x00, 0x00, 0x00, 0x01, 0x01};
  out.insert(out.end(), dst, dst + 6);
  out.insert(out.end(), src, src + 6);
  append_be16(out, ether_type);
}

/// Outer IPv4 header (IHL 5, DF, TTL 64) over `payload_len` bytes of
/// tunnel payload, checksummed.
void append_tunnel_ipv4(Bytes& out, const TunnelEndpoints& ep,
                        std::uint8_t proto, std::size_t payload_len) {
  const std::size_t ip_off = out.size();
  out.resize(out.size() + 20);
  std::uint8_t* ip = out.data() + ip_off;
  ip[0] = 0x45;
  ip[1] = 0;
  store_be16(ip + 2, static_cast<std::uint16_t>(20 + payload_len));
  store_be16(ip + 4, 0x7a7a);  // identification (outer)
  store_be16(ip + 6, packet::kIpv4FlagDf);
  ip[8] = 64;
  ip[9] = proto;
  store_be16(ip + 10, 0);
  store_be32(ip + 12, ep.src);
  store_be32(ip + 16, ep.dst);
  const auto csum = packet::internet_checksum({ip, 20});
  store_be16(ip + 10, csum);
}

packet::Mbuf with_meta(const packet::Mbuf& src, Bytes bytes) {
  packet::Mbuf m(std::move(bytes), src.timestamp_ns());
  m.set_rss_hash(src.rss_hash());
  m.set_rx_queue(src.rx_queue());
  m.set_filter_mark(src.filter_mark());
  return m;
}

}  // namespace

const char* encap_variant_name(EncapVariant v) noexcept {
  switch (v) {
    case EncapVariant::kVlan: return "vlan";
    case EncapVariant::kQinQ: return "qinq";
    case EncapVariant::kGre: return "gre";
    case EncapVariant::kVxlan: return "vxlan";
    case EncapVariant::kFrag: return "frag";
  }
  return "unknown";
}

packet::Mbuf wrap_vlan(const packet::Mbuf& m, std::uint16_t vlan_id) {
  const auto frame = m.bytes();
  if (frame.size() < 14) return m;
  Bytes out;
  out.reserve(frame.size() + 4);
  out.insert(out.end(), frame.begin(), frame.begin() + 12);
  append_be16(out, packet::kEtherTypeVlan);
  append_be16(out, vlan_id & 0x0FFF);
  out.insert(out.end(), frame.begin() + 12, frame.end());
  return with_meta(m, std::move(out));
}

packet::Mbuf wrap_qinq(const packet::Mbuf& m, std::uint16_t outer_id,
                       std::uint16_t inner_id) {
  const auto frame = m.bytes();
  if (frame.size() < 14) return m;
  Bytes out;
  out.reserve(frame.size() + 8);
  out.insert(out.end(), frame.begin(), frame.begin() + 12);
  append_be16(out, packet::kEtherTypeQinQ);
  append_be16(out, outer_id & 0x0FFF);
  append_be16(out, packet::kEtherTypeVlan);
  append_be16(out, inner_id & 0x0FFF);
  out.insert(out.end(), frame.begin() + 12, frame.end());
  return with_meta(m, std::move(out));
}

packet::Mbuf wrap_gre(const packet::Mbuf& m, const TunnelEndpoints& ep,
                      std::uint32_t key) {
  const auto frame = m.bytes();
  const std::size_t gre_len = 8;  // base header + key word
  Bytes out;
  out.reserve(14 + 20 + gre_len + frame.size());
  append_tunnel_eth(out, packet::kEtherTypeIpv4);
  append_tunnel_ipv4(out, ep, packet::kIpProtoGre, gre_len + frame.size());
  append_be16(out, 0x2000);  // flags: key present, version 0
  append_be16(out, packet::kEtherTypeTeb);
  append_be32(out, key);
  out.insert(out.end(), frame.begin(), frame.end());
  return with_meta(m, std::move(out));
}

packet::Mbuf wrap_vxlan(const packet::Mbuf& m, const TunnelEndpoints& ep,
                        std::uint32_t vni) {
  const auto frame = m.bytes();
  const std::size_t udp_payload = packet::Vxlan::kHeaderLen + frame.size();
  Bytes out;
  out.reserve(14 + 20 + 8 + udp_payload);
  append_tunnel_eth(out, packet::kEtherTypeIpv4);
  append_tunnel_ipv4(out, ep, packet::kIpProtoUdp, 8 + udp_payload);
  append_be16(out, 49152);  // outer source port
  append_be16(out, packet::kVxlanUdpPort);
  append_be16(out, static_cast<std::uint16_t>(8 + udp_payload));
  append_be16(out, 0);  // UDP checksum optional over IPv4 (RFC 7348)
  out.push_back(packet::Vxlan::kFlagValidVni);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  append_be32(out, (vni & 0x00FFFFFF) << 8);
  out.insert(out.end(), frame.begin(), frame.end());
  return with_meta(m, std::move(out));
}

std::vector<packet::Mbuf> fragment_ipv4(const packet::Mbuf& m,
                                        std::size_t first_chunk,
                                        std::size_t chunk) {
  const auto view = packet::PacketView::parse(m);
  if (!view || !view->ipv4() || view->is_fragment() || view->encapsulated() ||
      first_chunk == 0 || first_chunk % 8 != 0 || chunk == 0 ||
      chunk % 8 != 0) {
    return {m};
  }
  const auto& ip = *view->ipv4();
  const auto data = ip.payload();
  // Need at least two fragments, and every non-final fragment carries a
  // multiple of 8 bytes.
  if (data.size() <= first_chunk) return {m};

  const auto frame = m.bytes();
  const std::size_t ip_off = static_cast<std::size_t>(
      data.data() - frame.data()) - ip.header_len();
  const std::size_t header_end = ip_off + ip.header_len();

  std::vector<packet::Mbuf> out;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const std::size_t want = sent == 0 ? first_chunk : chunk;
    const std::size_t n = std::min(want, data.size() - sent);
    const bool last = sent + n == data.size();

    Bytes fragment(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(
                                                      header_end));
    fragment.insert(fragment.end(), data.begin() + sent,
                    data.begin() + sent + n);
    std::uint8_t* iph = fragment.data() + ip_off;
    store_be16(iph + 2, static_cast<std::uint16_t>(ip.header_len() + n));
    // Preserve every non-fragment flag bit (DF included) so reassembly
    // reproduces the original flags word exactly.
    const std::uint16_t flags = static_cast<std::uint16_t>(
        (ip.flags_frag() & ~(packet::kIpv4FlagMf |
                             packet::kIpv4FragOffsetMask)) |
        (last ? 0 : packet::kIpv4FlagMf) |
        static_cast<std::uint16_t>(sent / 8));
    store_be16(iph + 6, flags);
    store_be16(iph + 10, 0);
    const auto csum = packet::internet_checksum({iph, ip.header_len()});
    store_be16(iph + 10, csum);
    out.push_back(with_meta(m, std::move(fragment)));
    sent += n;
  }
  return out;
}

Trace encapsulate(const Trace& trace, EncapVariant variant) {
  Trace out;
  for (const auto& m : trace.packets()) {
    switch (variant) {
      case EncapVariant::kVlan:
        out.append(wrap_vlan(m, 42));
        break;
      case EncapVariant::kQinQ:
        out.append(wrap_qinq(m, 100, 42));
        break;
      case EncapVariant::kGre:
        out.append(wrap_gre(m, TunnelEndpoints{}, 0x2A));
        break;
      case EncapVariant::kVxlan:
        out.append(wrap_vxlan(m, TunnelEndpoints{}, 0x2A));
        break;
      case EncapVariant::kFrag:
        for (auto& f : fragment_ipv4(m)) out.append(std::move(f));
        break;
    }
  }
  return out;
}

}  // namespace retina::traffic

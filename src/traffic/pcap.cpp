#include "traffic/pcap.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace retina::traffic {

namespace {

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}
std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
void put32(std::FILE* f, std::uint32_t v, bool swapped = false) {
  if (swapped) v = swap32(v);
  if (std::fwrite(&v, 4, 1, f) != 1) {
    throw std::runtime_error("pcap: short write");
  }
}
void put16(std::FILE* f, std::uint16_t v, bool swapped = false) {
  if (swapped) v = swap16(v);
  if (std::fwrite(&v, 2, 1, f) != 1) {
    throw std::runtime_error("pcap: short write");
  }
}

}  // namespace

void write_pcap(const std::string& path, const Trace& trace,
                const PcapWriteOptions& options) {
  File file(std::fopen(path.c_str(), "wb"));
  if (!file) throw std::runtime_error("pcap: cannot open " + path);
  std::FILE* f = file.get();
  const bool sw = options.byteswapped;

  // The magic itself is what declares the byte order: a foreign-endian
  // file is one whose (swapped) magic still decodes to a known value.
  put32(f, options.nanos ? kMagicNanos : kMagicMicros, sw);
  put16(f, 2, sw);   // version major
  put16(f, 4, sw);   // version minor
  put32(f, 0, sw);   // thiszone
  put32(f, 0, sw);   // sigfigs
  put32(f, 1 << 16, sw);  // snaplen
  put32(f, kLinkTypeEthernet, sw);

  for (const auto& mbuf : trace.packets()) {
    const auto ts = mbuf.timestamp_ns();
    put32(f, static_cast<std::uint32_t>(ts / 1'000'000'000), sw);
    const auto frac_ns = static_cast<std::uint32_t>(ts % 1'000'000'000);
    put32(f, options.nanos ? frac_ns : frac_ns / 1'000, sw);
    put32(f, static_cast<std::uint32_t>(mbuf.length()), sw);  // captured
    put32(f, static_cast<std::uint32_t>(mbuf.length()), sw);  // original
    const auto bytes = mbuf.bytes();
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      throw std::runtime_error("pcap: short write");
    }
  }
}

Trace read_pcap(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) throw std::runtime_error("pcap: cannot open " + path);
  std::FILE* f = file.get();

  auto get32 = [f](std::uint32_t& v) {
    return std::fread(&v, 4, 1, f) == 1;
  };
  auto get16 = [f](std::uint16_t& v) {
    return std::fread(&v, 2, 1, f) == 1;
  };

  std::uint32_t magic;
  if (!get32(magic)) throw std::runtime_error("pcap: empty file");
  bool swapped = false;
  bool nanos = false;
  if (magic == kMagicMicros) {
  } else if (magic == kMagicNanos) {
    nanos = true;
  } else if (swap32(magic) == kMagicMicros) {
    swapped = true;
  } else if (swap32(magic) == kMagicNanos) {
    swapped = true;
    nanos = true;
  } else {
    throw std::runtime_error("pcap: bad magic");
  }

  std::uint16_t major, minor;
  std::uint32_t zone, sigfigs, snaplen, linktype;
  if (!get16(major) || !get16(minor) || !get32(zone) || !get32(sigfigs) ||
      !get32(snaplen) || !get32(linktype)) {
    throw std::runtime_error("pcap: truncated header");
  }
  if (swapped) linktype = swap32(linktype);
  if (linktype != kLinkTypeEthernet) {
    throw std::runtime_error("pcap: unsupported link type");
  }

  Trace trace;
  while (true) {
    std::uint32_t sec, frac, caplen, origlen;
    if (!get32(sec)) break;  // clean EOF
    if (!get32(frac) || !get32(caplen) || !get32(origlen)) {
      throw std::runtime_error("pcap: truncated record header");
    }
    if (swapped) {
      sec = swap32(sec);
      frac = swap32(frac);
      caplen = swap32(caplen);
    }
    if (caplen > (1u << 24)) throw std::runtime_error("pcap: absurd caplen");
    std::vector<std::uint8_t> bytes(caplen);
    if (caplen > 0 && std::fread(bytes.data(), 1, caplen, f) != caplen) {
      throw std::runtime_error("pcap: truncated packet");
    }
    const std::uint64_t ts =
        static_cast<std::uint64_t>(sec) * 1'000'000'000 +
        static_cast<std::uint64_t>(frac) * (nanos ? 1 : 1'000);
    trace.append(packet::Mbuf(std::move(bytes), ts));
  }
  return trace;
}

}  // namespace retina::traffic

// Minimal libpcap-format file I/O (no external dependency): classic
// pcap magic 0xa1b2c3d4, microsecond timestamps, Ethernet link type.
// Retina's offline mode (paper Appendix B) ingests pcaps instead of
// live packets; this module lets the C++ port do the same — write
// generated workloads to disk, read real captures back in.
#pragma once

#include <string>

#include "traffic/trace.hpp"

namespace retina::traffic {

/// On-disk format knobs for write_pcap. Defaults produce the classic
/// host-endian microsecond format every reader understands; the other
/// three combinations exist so the reader's byte-order and timestamp
/// handling can be property-tested against files we generate ourselves.
struct PcapWriteOptions {
  /// Nanosecond-resolution magic 0xa1b23c4d (exact virtual timestamps);
  /// false = microsecond magic 0xa1b2c3d4 (timestamps truncated to us).
  bool nanos = false;
  /// Write every header field in the opposite byte order, producing the
  /// file a foreign-endian machine would have captured.
  bool byteswapped = false;
};

/// Write a trace to a pcap file. Throws std::runtime_error on I/O
/// failure. Packets are written in trace order with their virtual
/// timestamps.
void write_pcap(const std::string& path, const Trace& trace,
                const PcapWriteOptions& options = {});

/// Read a pcap file into a trace. Handles both byte orders and both
/// microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) magics. Throws
/// std::runtime_error on malformed input.
Trace read_pcap(const std::string& path);

}  // namespace retina::traffic

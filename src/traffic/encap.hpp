// Encapsulated / fragmented variants of existing traffic: every crafted
// trace can be re-emitted VLAN-tagged, QinQ double-tagged, GRE- or
// VXLAN-tunneled, or IPv4-fragmented without touching the inner bytes.
// This is what multiplies the golden corpus — the same inner traffic in
// new outer shapes must produce byte-identical callback streams,
// because the encap-aware packet walk recovers exactly the frames these
// transforms wrapped.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/mbuf.hpp"
#include "traffic/trace.hpp"

namespace retina::traffic {

/// The outer shapes the golden corpus is multiplied by.
enum class EncapVariant : std::uint8_t {
  kVlan = 0,
  kQinQ = 1,
  kGre = 2,
  kVxlan = 3,
  kFrag = 4,
};

inline constexpr EncapVariant kAllEncapVariants[] = {
    EncapVariant::kVlan, EncapVariant::kQinQ, EncapVariant::kGre,
    EncapVariant::kVxlan, EncapVariant::kFrag};

/// Stable suffix used in variant pcap file names ("vlan", "qinq",
/// "gre", "vxlan", "frag").
const char* encap_variant_name(EncapVariant v) noexcept;

/// IPv4 tunnel transport endpoints (host byte order).
struct TunnelEndpoints {
  std::uint32_t src = 0x0AFF0001;  // 10.255.0.1
  std::uint32_t dst = 0x0AFF0002;  // 10.255.0.2
};

/// One 802.1Q C-tag inserted after the MACs. Timestamp and rx metadata
/// carry over.
packet::Mbuf wrap_vlan(const packet::Mbuf& m, std::uint16_t vlan_id);

/// QinQ: S-tag (0x88A8) + C-tag (0x8100).
packet::Mbuf wrap_qinq(const packet::Mbuf& m, std::uint16_t outer_id,
                       std::uint16_t inner_id);

/// GRE Transparent Ethernet Bridging: outer Ethernet + IPv4 (proto 47)
/// + GRE (key present) carrying the whole original frame.
packet::Mbuf wrap_gre(const packet::Mbuf& m, const TunnelEndpoints& ep,
                      std::uint32_t key);

/// VXLAN: outer Ethernet + IPv4 + UDP (dst 4789) + VXLAN header
/// carrying the whole original frame.
packet::Mbuf wrap_vxlan(const packet::Mbuf& m, const TunnelEndpoints& ep,
                        std::uint32_t vni);

/// Split one IPv4 packet into fragments carrying `first_chunk` bytes of
/// L4 data in the first fragment and up to `chunk` bytes in each later
/// one (both multiples of 8). Fragments preserve the original IP id and
/// every non-fragment header bit (including DF), so reassembly rebuilds
/// the original frame byte-exactly. Non-IPv4 (or too-small) packets
/// come back unchanged as a single element.
std::vector<packet::Mbuf> fragment_ipv4(const packet::Mbuf& m,
                                        std::size_t first_chunk = 8,
                                        std::size_t chunk = 16);

/// Apply one variant to a whole trace with the deterministic default
/// parameters the golden corpus uses (VLAN id 42, QinQ 100/42, GRE key
/// 0x2A, VXLAN VNI 0x2A, fragment chunks 8/16). Timestamps carry over,
/// so replay order is unchanged (fragments of one packet stay adjacent
/// under the stable time sort).
Trace encapsulate(const Trace& trace, EncapVariant variant);

}  // namespace retina::traffic

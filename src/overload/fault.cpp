#include "overload/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "packet/packet_view.hpp"

namespace retina::overload {

namespace {

bool parse_prob(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (v < 0.0 || v > 1.0) return false;
  out = v;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  plan.enabled = true;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Err("bad fault plan: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      if (!parse_u64(value, plan.seed)) {
        return Err("bad fault plan: seed wants an integer, got '" + value +
                   "'");
      }
    } else if (key == "jump-ms") {
      std::uint64_t ms = 0;
      if (!parse_u64(value, ms)) {
        return Err("bad fault plan: jump-ms wants an integer, got '" + value +
                   "'");
      }
      plan.clock_jump_ns = ms * 1'000'000;
    } else {
      double* slot = nullptr;
      if (key == "pool") slot = &plan.pool_exhaust_prob;
      else if (key == "ring") slot = &plan.ring_overflow_prob;
      else if (key == "trunc") slot = &plan.truncate_prob;
      else if (key == "corrupt") slot = &plan.corrupt_prob;
      else if (key == "clock") slot = &plan.clock_jump_prob;
      if (!slot) {
        return Err("bad fault plan: unknown key '" + key +
                   "' (known: seed, pool, ring, trunc, corrupt, clock, "
                   "jump-ms)");
      }
      if (!parse_prob(value, *slot)) {
        return Err("bad fault plan: " + key +
                   " wants a probability in [0,1], got '" + value + "'");
      }
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  if (!enabled) return "off";
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu,pool=%g,ring=%g,trunc=%g,corrupt=%g,clock=%g,"
                "jump-ms=%llu",
                static_cast<unsigned long long>(seed), pool_exhaust_prob,
                ring_overflow_prob, truncate_prob, corrupt_prob,
                clock_jump_prob,
                static_cast<unsigned long long>(clock_jump_ns / 1'000'000));
  return buf;
}

nic::IngressAction FaultInjector::on_ingress(packet::Mbuf& mbuf) {
  nic::IngressAction action;

  // Evaluation order is part of the determinism contract: a given seed
  // always draws the same variates per packet regardless of which
  // faults fire, because every probability is sampled unconditionally.
  const bool pool = rng_.chance(plan_.pool_exhaust_prob);
  const bool ring = rng_.chance(plan_.ring_overflow_prob);
  const bool trunc = rng_.chance(plan_.truncate_prob);
  const bool corrupt = rng_.chance(plan_.corrupt_prob);
  const bool clock = rng_.chance(plan_.clock_jump_prob);
  const std::uint64_t cut_draw = rng_.next();
  const std::uint64_t flip_pos_draw = rng_.next();
  const std::uint64_t flip_val_draw = rng_.next();

  if (clock) {
    // Forward-only discontinuity (PTP resync, firmware hiccup). The
    // offset persists so trace time stays monotonic — the timer wheel
    // sees an idle gap and expires everything the gap covers.
    clock_offset_ns_ += plan_.clock_jump_ns;
    counts_.clock_jumps.inc();
  }
  if (clock_offset_ns_ != 0) {
    mbuf.set_timestamp_ns(mbuf.timestamp_ns() + clock_offset_ns_);
  }

  if (pool) {
    // The driver could not allocate an mbuf; the frame never exists.
    // Short-circuit: no point mutating a packet that is already gone.
    counts_.pool_exhausted.inc();
    action.drop_pool_exhausted = true;
    return action;
  }

  if ((trunc || corrupt) && !mbuf.empty()) {
    // Both mutations target the L4 payload: headers stay parseable so
    // the damage lands in the protocol parsers, which must survive
    // arbitrary garbage without crashing or leaking state.
    const auto view = packet::PacketView::parse(mbuf);
    const auto payload = view ? view->l4_payload()
                              : std::span<const std::uint8_t>{};
    if (!payload.empty()) {
      const auto all = mbuf.bytes();
      const std::size_t payload_off =
          static_cast<std::size_t>(payload.data() - all.data());
      std::vector<std::uint8_t> bytes(all.begin(), all.end());
      if (trunc) {
        // Cut somewhere inside the payload (possibly to zero bytes).
        const std::size_t keep = cut_draw % payload.size();
        bytes.resize(payload_off + keep);
        counts_.truncated.inc();
      }
      if (corrupt && bytes.size() > payload_off) {
        const std::size_t span = bytes.size() - payload_off;
        const std::size_t at = payload_off + flip_pos_draw % span;
        bytes[at] ^= static_cast<std::uint8_t>(flip_val_draw | 1);
        counts_.corrupted.inc();
      }
      packet::Mbuf mutated(std::move(bytes), mbuf.timestamp_ns());
      mbuf = std::move(mutated);
    }
  }

  if (ring) {
    counts_.ring_overflows.inc();
    action.force_ring_overflow = true;
  }

  return action;
}

}  // namespace retina::overload

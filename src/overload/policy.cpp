#include "overload/policy.hpp"

#include <cstdio>
#include <cstdlib>

namespace retina::overload {

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNormal:
      return "normal";
    case DegradeLevel::kShedSessions:
      return "shed-sessions";
    case DegradeLevel::kShedReassembly:
      return "shed-reassembly";
    case DegradeLevel::kCountOnly:
      return "count-only";
    case DegradeLevel::kSink:
      return "sink";
    case DegradeLevel::kCount:
      break;
  }
  return "?";
}

const char* shed_stage_name(ShedStage stage) {
  switch (stage) {
    case ShedStage::kConnCreate:
      return "conn_create";
    case ShedStage::kSession:
      return "session";
    case ShedStage::kReassembly:
      return "reassembly";
    case ShedStage::kBuffering:
      return "buffering";
    case ShedStage::kParseBudget:
      return "parse_budget";
    case ShedStage::kCount:
      break;
  }
  return "?";
}

namespace {

/// Parse a strictly non-negative integer; returns false on any junk.
bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

Result<OverloadPolicy> OverloadPolicy::parse(const std::string& spec) {
  OverloadPolicy policy;
  policy.enabled = true;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Err("bad overload policy: expected key=value, got '" + item +
                 "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    std::uint64_t n = 0;
    if (key == "max-conns") {
      if (!parse_u64(value, n)) {
        return Err("bad overload policy: max-conns wants an integer, got '" +
                   value + "'");
      }
      policy.max_tracked_connections = static_cast<std::size_t>(n);
    } else if (key == "max-state-mb") {
      if (!parse_u64(value, n)) {
        return Err(
            "bad overload policy: max-state-mb wants an integer, got '" +
            value + "'");
      }
      policy.max_state_bytes = n * 1024 * 1024;
    } else if (key == "max-reasm-mb") {
      if (!parse_u64(value, n)) {
        return Err(
            "bad overload policy: max-reasm-mb wants an integer, got '" +
            value + "'");
      }
      policy.max_reassembly_bytes = n * 1024 * 1024;
    } else if (key == "parse-mcps") {
      if (!parse_u64(value, n)) {
        return Err(
            "bad overload policy: parse-mcps wants an integer, got '" +
            value + "'");
      }
      policy.parse_cycles_per_sec = n * 1'000'000;
    } else if (key == "ladder") {
      if (value == "on") {
        policy.ladder = true;
      } else if (value == "off") {
        policy.ladder = false;
      } else {
        return Err("bad overload policy: ladder wants on|off, got '" + value +
                   "'");
      }
    } else {
      return Err("bad overload policy: unknown key '" + key +
                 "' (known: max-conns, max-state-mb, max-reasm-mb, "
                 "parse-mcps, ladder)");
    }
  }
  return policy;
}

std::string OverloadPolicy::to_string() const {
  if (!enabled) return "off";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "max-conns=%zu,max-state-mb=%llu,max-reasm-mb=%llu,"
                "parse-mcps=%llu,ladder=%s",
                max_tracked_connections,
                static_cast<unsigned long long>(max_state_bytes >> 20),
                static_cast<unsigned long long>(max_reassembly_bytes >> 20),
                static_cast<unsigned long long>(parse_cycles_per_sec /
                                                1'000'000),
                ladder ? "on" : "off");
  return buf;
}

}  // namespace retina::overload

// Overload control (paper §5.3 + §6.1, taken from measurement to
// actuation): Retina reports loss/throughput/memory in real time and
// sheds load deterministically (sink-core RSS sampling) instead of
// stalling the data path. This header defines the *policy* side:
//
//  * per-core admission budgets — hard caps on tracked connections,
//    reassembly bytes, total connection-state bytes, and session-parse
//    cycles — enforced inside the pipeline so memory stays bounded no
//    matter how hostile the traffic is;
//  * the degradation ladder — a total order of service levels the
//    controller walks under sustained pressure, trading subscription
//    fidelity for survival one rung at a time: parse sessions → keep
//    connection records → count packets → sink flows at the NIC;
//  * shed accounting — every refused unit of work is counted per
//    pipeline stage, so "what did we give up, where?" is answerable
//    from telemetry rather than inferred from silence.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace retina::overload {

/// The degradation ladder, least to most degraded. Each rung keeps the
/// sheds of every rung above it: at kCountOnly, sessions and reassembly
/// are shed too.
enum class DegradeLevel : int {
  kNormal = 0,       // full service
  kShedSessions,     // no probing/parsing: session subs fall silent,
                     // connection records keep accumulating
  kShedReassembly,   // no TCP reassembly or stream delivery either
  kCountOnly,        // no new connections tracked: packets counted only
  kSink,             // NIC-level flow sampling: RETA buckets -> sink
  kCount,
};

const char* degrade_level_name(DegradeLevel level);

/// Per-subscription staging of the ladder: under a multi-subscription
/// runtime the controller's global level is applied to the *costliest*
/// subscription first (paper §5.3's "shed the most expensive work"),
/// one rung per cost rank. Rank 0 (the costliest by attributed cycles)
/// degrades to the full global level; rank 1 one rung less; and so on,
/// floored at kNormal. When the global level saturates at kSink every
/// rank is at kSink.
inline DegradeLevel staged_level(DegradeLevel global,
                                 std::size_t cost_rank) noexcept {
  const int staged = static_cast<int>(global) - static_cast<int>(cost_rank);
  return staged <= 0 ? DegradeLevel::kNormal : static_cast<DegradeLevel>(staged);
}

/// Pipeline stages at which work can be shed (telemetry label values).
enum class ShedStage : int {
  kConnCreate = 0,  // admission refused: new connection not tracked
  kSession,         // probe/parse skipped for a connection
  kReassembly,      // TCP reassembly / out-of-order buffering skipped
  kBuffering,       // match-pending packet/chunk buffering skipped
  kParseBudget,     // session-parse cycle budget exhausted
  kCount,
};

const char* shed_stage_name(ShedStage stage);

/// Per-core admission budgets plus ladder enablement. All budgets are
/// per worker core; 0 disables the individual cap. `enabled` gates
/// budget enforcement — the ladder level itself is always honored
/// (tests and the controller can set it directly).
struct OverloadPolicy {
  bool enabled = false;

  /// Maximum connections tracked per core (0 = unlimited).
  std::size_t max_tracked_connections = 0;

  /// Maximum approximate connection-state bytes per core, covering the
  /// table, buffered packets, reassembly holds, and parser state
  /// (0 = unlimited). Admission and buffering stop at the cap.
  std::uint64_t max_state_bytes = 0;

  /// Maximum bytes held in out-of-order reassembly + stream buffers
  /// per core (0 = unlimited).
  std::uint64_t max_reassembly_bytes = 0;

  /// Session probe/parse CPU budget per core as a token bucket refilled
  /// by virtual (trace) time: this many cycles per virtual second
  /// (0 = unlimited). When exhausted, in-flight connections degrade to
  /// connection accounting exactly like DegradeLevel::kShedSessions.
  std::uint64_t parse_cycles_per_sec = 0;

  /// May the controller walk the ladder? When false, only the hard
  /// budgets act (no level-by-level degradation).
  bool ladder = true;

  /// Parse a "key=value,key=value" spec:
  ///   max-conns=N         max tracked connections per core
  ///   max-state-mb=N      state-byte budget per core, in MiB
  ///   max-reasm-mb=N      reassembly-byte budget per core, in MiB
  ///   parse-mcps=N        parse budget, million cycles per virtual sec
  ///   ladder=on|off       allow controller degradation (default on)
  /// Any successfully parsed spec sets enabled = true.
  static Result<OverloadPolicy> parse(const std::string& spec);

  std::string to_string() const;
};

/// The ladder position, shared by the controller (writer) and every
/// pipeline (per-packet readers). A single relaxed atomic: readers
/// tolerate a stale level for a few packets, which is exactly the
/// hysteresis the controller wants anyway.
class OverloadState {
 public:
  DegradeLevel level() const noexcept {
    return static_cast<DegradeLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(DegradeLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

 private:
  std::atomic<int> level_{0};
};

}  // namespace retina::overload

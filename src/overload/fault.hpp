// Deterministic fault injection. A production capture pipeline meets
// mbuf-pool exhaustion, rx-ring overflow, truncated/garbled payloads and
// NIC clock discontinuities in the field; this module meets them in unit
// tests. A FaultPlan is a seeded recipe of per-packet fault
// probabilities; a FaultInjector executes it at the SimNic ingress hook
// (nic::IngressFault), so the same seed replays the exact same fault
// sequence — every shedding and robustness path is exercised
// reproducibly, never "sometimes in CI".
#pragma once

#include <cstdint>
#include <string>

#include "nic/port.hpp"
#include "packet/mbuf.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace retina::overload {

/// Seeded recipe of ingress faults. All probabilities are per offered
/// packet, evaluated independently in a fixed order so a (plan, trace)
/// pair is fully deterministic.
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 1;

  double pool_exhaust_prob = 0;   // mbuf allocation fails: packet lost
  double ring_overflow_prob = 0;  // rx descriptor ring full: packet lost
  double truncate_prob = 0;       // frame cut mid-L4-payload
  double corrupt_prob = 0;        // random L4 payload bytes flipped
  double clock_jump_prob = 0;     // NIC clock jumps forward
  std::uint64_t clock_jump_ns = 50'000'000;  // magnitude of each jump

  /// Parse a "key=value,..." spec:
  ///   seed=N        RNG seed (default 1)
  ///   pool=P        mbuf-pool exhaustion probability
  ///   ring=P        forced ring-overflow probability
  ///   trunc=P       payload truncation probability
  ///   corrupt=P     payload corruption probability
  ///   clock=P       clock-jump probability
  ///   jump-ms=N     clock-jump magnitude in milliseconds
  /// Probabilities are floats in [0,1]. Any successfully parsed spec
  /// sets enabled = true.
  static Result<FaultPlan> parse(const std::string& spec);

  std::string to_string() const;
};

/// Executes a FaultPlan at the NIC ingress. Single-threaded by contract
/// (called from the dispatching thread only), counters are relaxed
/// atomics so tests/telemetry may read them concurrently.
class FaultInjector final : public nic::IngressFault {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  nic::IngressAction on_ingress(packet::Mbuf& mbuf) override;

  struct Counters {
    std::uint64_t pool_exhausted = 0;
    std::uint64_t ring_overflows = 0;
    std::uint64_t truncated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t clock_jumps = 0;
  };
  Counters counters() const noexcept {
    Counters snap;
    snap.pool_exhausted = counts_.pool_exhausted.load();
    snap.ring_overflows = counts_.ring_overflows.load();
    snap.truncated = counts_.truncated.load();
    snap.corrupted = counts_.corrupted.load();
    snap.clock_jumps = counts_.clock_jumps.load();
    return snap;
  }

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct AtomicCounters {
    util::RelaxedCell pool_exhausted, ring_overflows, truncated, corrupted,
        clock_jumps;
  };

  FaultPlan plan_;
  util::Xoshiro256 rng_;
  std::uint64_t clock_offset_ns_ = 0;  // jumps accumulate: clock stays
                                       // monotonic, never steps back
  AtomicCounters counts_;
};

}  // namespace retina::overload

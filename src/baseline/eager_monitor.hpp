// Baseline monitors for the Fig. 6 comparison. These model the
// *architecture* of the systems the paper measures against, on top of
// the same packet substrate, so the comparison isolates pipeline design
// rather than implementation maturity:
//
//  * ZeekLike    — full-visibility monitor with a per-packet event
//    engine: every packet triggers string-keyed handler dispatch, every
//    connection is tracked and logged, every TCP stream is reassembled
//    into copied buffers and all protocol analyzers run on it.
//  * SnortLike   — signature IDS that cannot restrict pattern matching
//    to selected packets: the rule's content pattern runs over every
//    packet payload (the behavior the paper calls out), plus full
//    stream reassembly.
//  * SuricataLike — modern IDS: full connection tracking and copied
//    stream reassembly, protocol detection first, and the SNI rule only
//    evaluated on TLS streams. No per-packet event dispatch.
//
// None of the three decompose the filter or discard traffic early —
// that is precisely Retina's advantage, and what Fig. 6 measures.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <regex>
#include <span>
#include <string>
#include <vector>

#include "conntrack/conn_table.hpp"
#include "packet/mbuf.hpp"
#include "packet/packet_view.hpp"
#include "protocols/tls/tls_parser.hpp"
#include "stream/reassembly.hpp"

namespace retina::baseline {

enum class MonitorKind { kZeekLike, kSnortLike, kSuricataLike };

const char* monitor_kind_name(MonitorKind kind);

struct BaselineConfig {
  MonitorKind kind = MonitorKind::kSuricataLike;
  /// The analysis task of §6.2: log connections whose TLS server name
  /// matches this pattern.
  std::string sni_pattern = "bench";
  /// Per-direction stream depth (bytes copied before truncation);
  /// matches the depth limits real IDSes apply.
  std::size_t stream_depth = 1 << 20;
};

struct BaselineStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t conns = 0;
  std::uint64_t reassembled_bytes = 0;  // bytes memcpy'd into buffers
  std::uint64_t events_dispatched = 0;  // ZeekLike event engine work
  std::uint64_t pattern_scans = 0;      // SnortLike per-packet scans
  std::uint64_t tls_handshakes = 0;
  std::uint64_t matches = 0;            // rule/SNI hits logged
  std::uint64_t log_lines = 0;
  std::uint64_t busy_cycles = 0;

  double busy_seconds() const;
};

class EagerMonitor {
 public:
  explicit EagerMonitor(BaselineConfig config);

  void process(const packet::Mbuf& mbuf);
  void finish();

  const BaselineStats& stats() const noexcept { return stats_; }

 private:
  struct Conn {
    std::unique_ptr<stream::StreamReassembler> reasm_up;
    std::unique_ptr<stream::StreamReassembler> reasm_down;
    // The traditional copied stream buffers (paper §5.2 contrasts these
    // with Retina's pass-through design).
    std::vector<std::uint8_t> stream_up;
    std::vector<std::uint8_t> stream_down;
    std::unique_ptr<protocols::TlsParser> tls;
    bool tls_possible = true;
    bool handshake_done = false;
    bool from_first_is_orig = true;
    std::uint64_t pkts = 0;
    std::uint64_t bytes = 0;
  };
  using Table = conntrack::ConnTable<Conn>;

  void dispatch_events(const packet::PacketView& view);
  void scan_payload(std::span<const std::uint8_t> payload);
  void feed_stream(Conn& conn, const packet::PacketView& view,
                   bool from_orig, std::uint64_t ts);
  void on_handshake(Conn& conn, const protocols::TlsHandshake& handshake);
  void log_line(const std::string& line);

  BaselineConfig config_;
  std::regex sni_regex_;
  std::regex payload_regex_;
  Table table_;
  BaselineStats stats_;
  std::uint64_t last_ts_ = 0;
  std::size_t benchmark_sink_ = 0;  // keeps marshalled metadata observable
  // Zeek-style event engine: name -> handlers, plus the event queue
  // through which every raised event (and its heap-allocated argument
  // record) passes before handlers run.
  std::map<std::string, std::vector<std::function<void()>>> event_handlers_;
  struct QueuedEvent {
    const std::vector<std::function<void()>>* handlers;
    std::unique_ptr<std::vector<std::uint64_t>> args;
  };
  std::vector<QueuedEvent> event_queue_;
  std::vector<std::string> log_sink_;
};

}  // namespace retina::baseline

#include "baseline/eager_monitor.hpp"

#include <algorithm>

#include "packet/packet_view.hpp"
#include "util/cycles.hpp"

namespace retina::baseline {

namespace {

using packet::PacketView;

constexpr const char* kEventNames[] = {"new_packet", "tcp_packet",
                                       "connection_state", "stream_data"};

}  // namespace

const char* monitor_kind_name(MonitorKind kind) {
  switch (kind) {
    case MonitorKind::kZeekLike: return "zeek-like";
    case MonitorKind::kSnortLike: return "snort-like";
    case MonitorKind::kSuricataLike: return "suricata-like";
  }
  return "?";
}

double BaselineStats::busy_seconds() const {
  return util::cycles_to_seconds(busy_cycles);
}

EagerMonitor::EagerMonitor(BaselineConfig config)
    : config_(std::move(config)),
      sni_regex_(config_.sni_pattern),
      payload_regex_(config_.sni_pattern) {
  // Zeek-style event registry: a realistic handful of handlers per
  // event, dispatched by name for every packet.
  for (const char* name : kEventNames) {
    auto& handlers = event_handlers_[name];
    for (int i = 0; i < 2; ++i) {
      handlers.emplace_back([this] { ++stats_.events_dispatched; });
    }
  }
}

void EagerMonitor::log_line(const std::string& line) {
  ++stats_.log_lines;
  // Retained in a bounded sink to model the cost of producing log
  // records without unbounded memory.
  if (log_sink_.size() < 4096) {
    log_sink_.push_back(line);
  } else {
    log_sink_[stats_.log_lines % log_sink_.size()] = line;
  }
}

void EagerMonitor::dispatch_events(const PacketView& view) {
  // The event-engine cost full-visibility monitors pay on every packet:
  // event names materialized as strings, map lookups, handler vectors
  // invoked indirectly, and event metadata (timestamps, connection ids)
  // marshalled for the scripting layer.
  auto raise = [this, &view](std::string name) {
    const auto it = event_handlers_.find(name);
    if (it == event_handlers_.end()) return;
    // Each raised event carries a heap-allocated argument record
    // (timestamp, lengths, connection id) into the queue.
    auto args = std::make_unique<std::vector<std::uint64_t>>();
    args->push_back(view.mbuf().timestamp_ns());
    args->push_back(view.mbuf().length());
    args->push_back(view.l4_payload().size());
    event_queue_.push_back(QueuedEvent{&it->second, std::move(args)});
  };
  raise(std::string("new_packet"));
  if (view.tcp()) {
    raise(std::string("tcp_packet"));
    raise(std::string("connection_state"));
    if (!view.l4_payload().empty()) raise(std::string("stream_data"));
  }
  // Drain the queue: handlers observe the marshalled arguments.
  for (auto& event : event_queue_) {
    for (const auto& handler : *event.handlers) handler();
    benchmark_sink_ += event.args->size();
  }
  event_queue_.clear();
}

void EagerMonitor::scan_payload(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return;
  ++stats_.pattern_scans;
  // The single rule's content pattern, run over the raw payload of
  // every packet (Snort cannot scope it to ClientHello packets).
  const char* begin = reinterpret_cast<const char*>(payload.data());
  std::cmatch match;
  if (std::regex_search(begin, begin + payload.size(), match,
                        payload_regex_)) {
    ++stats_.matches;
  }
}

void EagerMonitor::on_handshake(Conn& conn,
                                const protocols::TlsHandshake& handshake) {
  conn.handshake_done = true;
  ++stats_.tls_handshakes;
  if (std::regex_search(handshake.sni, sni_regex_)) {
    ++stats_.matches;
    log_line("ssl " + handshake.sni + " " + handshake.cipher_name());
  }
}

void EagerMonitor::feed_stream(Conn& conn, const PacketView& view,
                               bool from_orig, std::uint64_t ts) {
  auto& reasm = from_orig ? conn.reasm_up : conn.reasm_down;
  auto& stream = from_orig ? conn.stream_up : conn.stream_down;
  if (!reasm) reasm = std::make_unique<stream::StreamReassembler>(500);

  stream::L4Pdu pdu;
  pdu.mbuf = view.mbuf();
  pdu.payload = view.l4_payload();
  pdu.seq = view.tcp()->seq();
  pdu.tcp_flags = view.tcp()->flags();
  pdu.from_originator = from_orig;
  pdu.ts_ns = ts;

  std::vector<stream::L4Pdu> ready;
  reasm->push(std::move(pdu), ready);

  for (auto& in_order : ready) {
    if (in_order.payload.empty()) continue;
    // The traditional design: copy every in-order payload into the
    // connection's stream buffer, whether or not anyone needs it.
    if (stream.size() < config_.stream_depth) {
      const auto take = std::min<std::size_t>(
          in_order.payload.size(), config_.stream_depth - stream.size());
      stream.insert(stream.end(), in_order.payload.begin(),
                    in_order.payload.begin() +
                        static_cast<std::ptrdiff_t>(take));
      stats_.reassembled_bytes += take;
    }
    // All analyzers run over the stream (Zeek) / protocol detection
    // then the TLS analyzer (Suricata, Snort's SSL preprocessor).
    if (conn.tls_possible && !conn.handshake_done) {
      if (!conn.tls) conn.tls = std::make_unique<protocols::TlsParser>();
      const auto verdict = conn.tls->probe(in_order);
      if (verdict == protocols::ProbeResult::kNo) {
        conn.tls_possible = false;
        continue;
      }
      const auto result = conn.tls->parse(in_order);
      for (auto& session : conn.tls->take_sessions()) {
        if (const auto* hs = session.get<protocols::TlsHandshake>()) {
          on_handshake(conn, *hs);
        }
      }
      if (result == protocols::ParseResult::kError) {
        conn.tls_possible = false;
      }
      // Note: unlike Retina, parsing completion does NOT stop stream
      // reassembly or tracking — full visibility keeps paying.
    }
  }
}

void EagerMonitor::process(const packet::Mbuf& mbuf) {
  const auto t0 = util::rdtsc();
  ++stats_.packets;
  stats_.bytes += mbuf.length();
  last_ts_ = std::max(last_ts_, mbuf.timestamp_ns());

  table_.advance(last_ts_, [this](Table::ConnId, Conn& conn) {
    if (config_.kind == MonitorKind::kZeekLike) {
      log_line("conn " + std::to_string(conn.pkts) + " pkts " +
               std::to_string(conn.bytes) + " bytes");
    }
  });

  const auto view = PacketView::parse(mbuf);
  if (!view) {
    stats_.busy_cycles += util::rdtsc() - t0;
    return;
  }

  if (config_.kind == MonitorKind::kZeekLike) {
    dispatch_events(*view);
  }
  if (config_.kind == MonitorKind::kSnortLike) {
    scan_payload(view->l4_payload());
  }

  if (view->five_tuple()) {
    const auto canon = view->five_tuple()->canonical();
    auto id = table_.find(canon.key);
    if (id == Table::kInvalid) {
      Conn conn;
      conn.from_first_is_orig = canon.originator_is_first;
      id = table_.insert(canon.key, std::move(conn), last_ts_);
      ++stats_.conns;
    } else {
      table_.touch(id, last_ts_);
    }
    auto& conn = table_.get(id);
    ++conn.pkts;
    conn.bytes += mbuf.length();
    const bool from_orig =
        canon.originator_is_first == conn.from_first_is_orig;
    if (view->tcp()) {
      feed_stream(conn, *view, from_orig, last_ts_);
    }
    if (conn.pkts == 1 && view->tcp() && view->tcp()->syn()) {
      table_.mark_established(id, last_ts_);
    }
  }

  stats_.busy_cycles += util::rdtsc() - t0;
}

void EagerMonitor::finish() {
  const auto t0 = util::rdtsc();
  table_.for_each([this](Table::ConnId, Conn& conn) {
    if (conn.tls) {
      for (auto& session : conn.tls->drain_sessions()) {
        if (const auto* hs = session.get<protocols::TlsHandshake>()) {
          on_handshake(conn, *hs);
        }
      }
    }
    if (config_.kind == MonitorKind::kZeekLike) {
      log_line("conn " + std::to_string(conn.pkts) + " pkts " +
               std::to_string(conn.bytes) + " bytes");
    }
  });
  stats_.busy_cycles += util::rdtsc() - t0;
}

}  // namespace retina::baseline

#include "multisub/subscription_set.hpp"

#include <algorithm>

namespace retina::multisub {

SubscriptionSet::Builder SubscriptionSet::builder() { return Builder{}; }

SubscriptionSet::Builder& SubscriptionSet::Builder::add(
    core::Subscription subscription, std::string name) & {
  if (name.empty()) name = "sub" + std::to_string(subs_.size());
  subs_.push_back(std::move(subscription));
  names_.push_back(std::move(name));
  return *this;
}

SubscriptionSet::Builder&& SubscriptionSet::Builder::add(
    core::Subscription subscription, std::string name) && {
  return std::move(add(std::move(subscription), std::move(name)));
}

SubscriptionSet::Builder& SubscriptionSet::Builder::add(
    Result<core::Subscription> subscription, std::string name) & {
  if (!subscription) {
    if (name.empty()) {
      name = "sub" + std::to_string(subs_.size() + errors_.size());
    }
    errors_.push_back(name + ": " + subscription.error());
    return *this;
  }
  return add(std::move(*subscription), std::move(name));
}

SubscriptionSet::Builder&& SubscriptionSet::Builder::add(
    Result<core::Subscription> subscription, std::string name) && {
  return std::move(add(std::move(subscription), std::move(name)));
}

Result<SubscriptionSet> SubscriptionSet::Builder::build() const {
  if (!errors_.empty()) {
    std::string joined = "subscription set has invalid members: ";
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      if (i > 0) joined += "; ";
      joined += errors_[i];
    }
    return Err(std::move(joined));
  }
  if (subs_.empty()) {
    return Err("subscription set is empty: add at least one subscription");
  }
  if (subs_.size() > kMaxSubscriptions) {
    return Err("subscription set exceeds " +
               std::to_string(kMaxSubscriptions) + " members (" +
               std::to_string(subs_.size()) + " added)");
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const auto dup = std::find(names_.begin() + i + 1, names_.end(),
                               names_[i]);
    if (dup != names_.end()) {
      return Err("duplicate subscription name '" + names_[i] + "'");
    }
  }
  SubscriptionSet set;
  set.subs_ = subs_;
  set.names_ = names_;
  return set;
}

}  // namespace retina::multisub

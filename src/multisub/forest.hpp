// The shared filter forest: N subscriptions' decomposed filters merged
// so a single pass decides every subscription at once.
//
// Structure (tentpole of the multi-subscription engine):
//  * each member filter is decomposed on its own (hardware-rule
//    validation and capability fallback included), then *grafted* into
//    one merged predicate trie whose nodes carry per-subscription
//    bitsets (TrieNode::subs / terminal_subs) — the "bitset forest"
//    of docs/ARCHITECTURE.md;
//  * every structurally distinct predicate across the whole set gets
//    exactly one compiled thunk in the shared PredicateBank, indexed by
//    the merged trie's eval slots;
//  * evaluation keeps per-subscription trie *views* (each subscription's
//    own node ids, so resume-node semantics match the single-
//    subscription engine exactly) but memoizes predicate outcomes
//    through an EvalScratch: the first subscription that needs
//    `tls.sni ~ 'x'` pays for the regex, every other subscription reads
//    the cached verdict. One packet/session therefore evaluates each
//    distinct predicate at most once no matter how many subscriptions
//    reference it;
//  * the hardware rule sets are unioned (FlowRuleSet::add_unique):
//    permit-any semantics make the union a superset of every member's
//    coverage, so the NIC program stays correct for all of them.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "filter/batch.hpp"
#include "filter/decompose.hpp"
#include "multisub/subscription_set.hpp"
#include "nic/flow_rule.hpp"

namespace retina::multisub {

/// Per-evaluation memo over the shared predicate bank. Stamp-based: one
/// epoch per packet (or per session), O(1) begin(), no clearing. Owned
/// by the pipeline (per core), never shared across threads — the forest
/// itself stays immutable and shareable.
class EvalScratch {
 public:
  EvalScratch() = default;
  explicit EvalScratch(std::size_t slots)
      : stamp_(slots, 0), value_(slots, 0) {}

  /// Start a new evaluation epoch (one packet / one session).
  void begin() noexcept { ++epoch_; }

  template <typename Compute>
  bool memo(std::uint32_t slot, Compute&& compute) {
    if (stamp_[slot] == epoch_) return value_[slot] != 0;
    const bool v = compute();
    stamp_[slot] = epoch_;
    value_[slot] = v ? 1 : 0;
    return v;
  }

  /// Prefill a slot's verdict for the current epoch — the batch engine
  /// pre-evaluates every packet-layer predicate across a whole burst,
  /// then presets the memo so the trie walk never calls a thunk.
  void preset(std::uint32_t slot, bool value) noexcept {
    stamp_[slot] = epoch_;
    value_[slot] = value ? 1 : 0;
  }

  std::size_t slots() const noexcept { return stamp_.size(); }

 private:
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint8_t> value_;
  std::uint64_t epoch_ = 0;  // 64-bit: never wraps in practice
};

class FilterForest {
 public:
  /// Decompose every member filter, merge the tries, compile the shared
  /// bank. Per-member errors (parse/semantic) come back as an error
  /// string naming the offending subscription.
  static Result<FilterForest> build(
      const SubscriptionSet& set, const filter::FieldRegistry& registry,
      const nic::NicCapabilities& caps = nic::NicCapabilities::connectx5());

  std::size_t sub_count() const noexcept { return views_.size(); }

  /// Single-pass software packet filter: evaluates the packet against
  /// every subscription's view through one shared memo. `results` must
  /// have sub_count() entries; results[s] is exactly what subscription
  /// s's own CompiledFilter::packet_filter would have returned. Returns
  /// the mask of subscriptions whose result matched. Calls
  /// scratch.begin() itself (one epoch per packet).
  SubMask packet_filter(const packet::PacketView& pkt, EvalScratch& scratch,
                        filter::FilterResult* results) const;

  /// Evaluate every distinct packet-layer predicate across a parsed
  /// burst in one sweep (filter/batch.hpp). `slot_masks` must have
  /// bank_size() entries; bit i of slot_masks[slot] = predicate verdict
  /// for lane i.
  void eval_batch(const packet::SoaBurstView& soa,
                  filter::BatchProgram::Mask* slot_masks) const {
    bank_.eval_batch(soa, slot_masks);
  }

  /// packet_filter for one lane of a batch-evaluated burst: presets the
  /// scratch memo from the precomputed slot masks, then runs the same
  /// per-subscription walk — the thunks are never called. Byte-identical
  /// results to packet_filter(*soa.view(lane), ...).
  SubMask packet_filter_batched(const packet::SoaBurstView& soa,
                                std::size_t lane,
                                const filter::BatchProgram::Mask* slot_masks,
                                EvalScratch& scratch,
                                filter::FilterResult* results) const;

  /// Subscription s's connection filter (identical semantics to
  /// CompiledFilter::conn_filter, over s's view).
  filter::FilterResult conn_filter(std::size_t sub,
                                   std::uint32_t pkt_term_node,
                                   std::size_t app_proto_id) const;

  /// Subscription s's session filter, memoized through `scratch`. The
  /// caller begins one scratch epoch per session, then loops the
  /// surviving subscriptions — shared session predicates (the expensive
  /// regexes) evaluate once per session.
  bool session_filter(std::size_t sub, std::uint32_t conn_term_node,
                      const protocols::Session& session,
                      EvalScratch& scratch) const;

  bool needs_conn_stage(std::size_t sub) const {
    return views_[sub].needs_conn;
  }
  bool needs_session_stage(std::size_t sub) const {
    return views_[sub].needs_session;
  }
  const std::set<std::size_t>& app_protos(std::size_t sub) const {
    return views_[sub].app_protos;
  }
  const std::string& source(std::size_t sub) const {
    return views_[sub].source;
  }
  /// Node count of subscription s's reachable view (tests).
  std::size_t view_node_count(std::size_t sub) const {
    return views_[sub].reachable;
  }

  /// Unioned, device-validated hardware rules covering every member.
  const nic::FlowRuleSet& hw_rules() const noexcept { return hw_rules_; }

  /// The merged bitset trie (diagnostics, tests, docs examples).
  const filter::PredicateTrie& merged_trie() const noexcept {
    return merged_;
  }
  /// Distinct predicates across the whole set == shared slot count.
  std::size_t bank_size() const noexcept { return bank_.size(); }

  /// The shared predicate bank (slot thunks + batch program).
  const filter::PredicateBank& bank() const noexcept { return bank_; }

  /// A scratch sized for this forest's bank. Make one per pipeline per
  /// purpose (packet epoch vs session epoch).
  EvalScratch make_scratch() const { return EvalScratch(bank_size()); }

 private:
  struct SubNode {
    filter::FilterLayer layer = filter::FilterLayer::kPacket;
    bool terminal = false;
    bool has_conn_descendant = false;
    std::uint32_t slot = 0;      // shared bank slot (packet/session nodes)
    std::size_t app_proto = 0;   // connection nodes
    std::vector<std::uint32_t> children;
    std::vector<std::uint32_t> path;  // root..self inclusive
  };
  struct SubView {
    std::string source;
    bool needs_conn = false;
    bool needs_session = false;
    std::set<std::size_t> app_protos;
    std::size_t reachable = 0;
    std::vector<SubNode> nodes;  // indexed by the sub's own trie ids
  };

  FilterForest() = default;

  bool eval_packet(std::uint32_t slot, const packet::PacketView& pkt,
                   EvalScratch& scratch) const {
    return scratch.memo(slot, [&] { return bank_.eval_packet(slot, pkt); });
  }
  bool packet_dfs(const SubView& view, std::uint32_t id,
                  const packet::PacketView& pkt, EvalScratch& scratch,
                  filter::FilterResult& best) const;
  bool session_dfs(const SubView& view, std::uint32_t id,
                   const protocols::Session& session,
                   EvalScratch& scratch) const;

  std::vector<SubView> views_;
  filter::PredicateTrie merged_;
  nic::FlowRuleSet hw_rules_;
  // Shared thunks + batch program, indexed by the merged trie's eval
  // slots. Only the entry matching the slot's layer is set.
  filter::PredicateBank bank_;
};

}  // namespace retina::multisub

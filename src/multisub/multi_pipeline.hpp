// Single-pass dispatch for a SubscriptionSet (the multi-subscription
// engine's data path). One MultiPipeline instance runs per worker core,
// mirroring core::Pipeline stage for stage — packet filter → conn
// tracking → reassembly → probe → conn filter → parse → session filter
// → callbacks — but evaluated ONCE per packet/connection/session for
// the whole set:
//
//  * the shared filter forest evaluates every distinct predicate at
//    most once per packet (memoized through an EvalScratch) and yields
//    a per-subscription FilterResult array plus the mask of matching
//    subscriptions;
//  * connections keep ONE table entry: shared probe/parse/reassembly/
//    record state plus per-subscription bitmasks (touched / dropped /
//    matched / early / settled) and per-subscription resume nodes, so
//    each member walks the identical Probe→Parse→Track→Delete ladder
//    it would walk alone;
//  * lazy reconstruction is gated on "any surviving subscription still
//    needs it": the parser is released when the last session-hungry
//    member settles, reassembly when the last stream member drops;
//  * overload shedding stages the degradation ladder per subscription —
//    the costliest member (by attributed cycles) degrades first
//    (overload::staged_level), so one expensive subscription sheds
//    before cheap ones lose data;
//  * per-subscription telemetry: matched/delivered/shed counters and
//    cycle attribution, labeled with the subscription's name, plus
//    subscription-tagged lifecycle spans.
//
// Equivalence contract: each member observes the callback stream it
// would observe running alone (order within a flow preserved) whenever
// packet-layer predicates are flow-constant — true for five-tuple
// predicates, i.e. the common case and all bundled examples. Filters
// over per-packet-varying fields (e.g. tcp.flags) share connection
// state with the other members and may see richer connection records
// than they would alone.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "conntrack/conn_state.hpp"
#include "conntrack/conn_table.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "core/stats.hpp"
#include "multisub/forest.hpp"
#include "multisub/subscription_set.hpp"
#include "packet/soa.hpp"
#include "protocols/registry.hpp"
#include "stream/reassembly.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace retina::multisub {

/// Per-subscription roll-up, always maintained (telemetry optional).
struct SubStats {
  std::uint64_t conns_matched = 0;   // connections terminally matched
  std::uint64_t delivered = 0;       // callback invocations
  std::uint64_t dropped_filter = 0;  // connections given up on
  std::uint64_t shed = 0;            // work units shed for this member
  std::uint64_t cycles = 0;          // attributed CPU cycles
};

class MultiPipeline : public core::OffloadClient {
 public:
  MultiPipeline(const core::RuntimeConfig& config, const SubscriptionSet& set,
                const FilterForest& forest,
                const filter::FieldRegistry& field_registry,
                const protocols::ParserRegistry& parser_registry);

  MultiPipeline(const MultiPipeline&) = delete;
  MultiPipeline& operator=(const MultiPipeline&) = delete;

  static constexpr std::size_t kMaxBurst = core::Pipeline::kMaxBurst;

  void process(packet::Mbuf mbuf);
  /// Burst path: same columnar batch sweep as core::Pipeline — the
  /// burst is parsed into the SoA view, the shared bank's batch program
  /// decides every distinct packet predicate for all lanes at once, and
  /// the per-lane forest walk then reads verdicts from the preset memo;
  /// the stateful pass runs afterwards, in arrival order, warm from the
  /// table prefetches.
  void process_burst(std::span<packet::Mbuf> burst);
  static void prefetch_frames(std::span<const packet::Mbuf> burst) noexcept {
    core::Pipeline::prefetch_frames(burst);
  }

  /// Terminate and deliver everything still tracked (end of run).
  void finish();

  void attach_telemetry(telemetry::MetricRegistry& registry, std::size_t core,
                        telemetry::SpanRing* spans = nullptr);
  void attach_overload(overload::OverloadState* state) noexcept {
    overload_ = state;
  }

  /// Wire the dynamic flow offload engine in (see core::Pipeline).
  void attach_offload(core::OffloadRequester* requester,
                      std::size_t core) noexcept {
    offload_requester_ = requester;
    offload_core_ = core;
  }

  /// Wire the analytics sink in (see core::Pipeline::attach_sink).
  void attach_sink(sink::FlowSink* sink, std::size_t core) noexcept {
    sink_ = sink;
    sink_core_ = core;
  }

  // core::OffloadClient: called by the engine on this worker core.
  bool offload_park(const packet::FiveTuple& key,
                    nic::OffloadSeed& seed_out) override;
  bool offload_merge(const nic::OffloadEvictRecord& rec) override;
  void offload_clear_pending(const packet::FiveTuple& key) override;

  const core::PipelineStats& stats() const noexcept { return stats_; }
  const SubStats& sub_stats(std::size_t sub) const {
    return sub_stats_.at(sub);
  }
  std::size_t sub_count() const noexcept { return sub_stats_.size(); }
  std::size_t live_connections() const noexcept { return table_.size(); }
  std::uint64_t approx_state_bytes() const;
  /// Current ladder rung member `sub` runs at (tests/diagnostics).
  overload::DegradeLevel staged_level_of(std::size_t sub) const;
  /// Pin the cost order (costliest first) instead of waiting for cycle
  /// attribution to separate the members — deterministic staged-ladder
  /// tests only.
  void set_cost_order_for_test(std::span<const std::size_t> costliest_first);

 private:
  /// Per-subscription pending deliveries (Fig. 4a buffering, kept per
  /// member because members resolve their filters at different times).
  struct SubBuffer {
    std::vector<packet::Mbuf> packets;  // packet-level members
    std::uint64_t packet_bytes = 0;
    std::vector<stream::L4Pdu> pdus;    // stream-level members
    std::uint64_t pdu_bytes = 0;
  };

  struct ConnEntry {
    conntrack::ConnState state = conntrack::ConnState::kProbe;  // union
    bool from_first_is_orig = true;
    bool is_tcp = false;

    // Per-subscription lifecycle bitsets. alive = touched & ~dropped;
    // a member still needs probe/parse work while alive and not
    // settled.
    SubMask touched = 0;   // member's packet filter admitted this conn
    SubMask dropped = 0;   // member tombstone (filter said no / done)
    SubMask matched = 0;   // a terminal predicate matched
    SubMask early = 0;     // matched at the packet/connection layer
    SubMask conn_ran = 0;  // connection filter has run
    SubMask settled = 0;   // no further probe/parse work wanted
    std::vector<std::uint32_t> resume;  // per-member resume node
    std::vector<SubBuffer> buffers;     // per-member pending deliveries

    // Shared probe/parse state — identical to core::Pipeline.
    std::size_t probe_attempts = 0;
    std::uint32_t probe_alive = ~0u;
    std::size_t app_proto = 0;
    std::array<std::vector<std::uint8_t>, 2> probe_prefix;
    std::vector<stream::L4Pdu> probe_pdus;
    std::unique_ptr<protocols::ConnParser> parser;

    std::unique_ptr<stream::StreamReassembler> reasm_up;
    std::unique_ptr<stream::StreamReassembler> reasm_down;

    core::ConnRecord record;
    std::uint32_t max_seq_end[2] = {0, 0};
    std::uint32_t last_seq[2] = {0, 0};
    bool seq_seen[2] = {false, false};
    bool fin_up = false;
    bool fin_down = false;

    // Roll-up bookkeeping: did any member drop on a filter decision, and
    // has the connection-level drop already been counted?
    bool any_filter_drop = false;
    bool drop_counted = false;

    // RSS hash of the canonical tuple (recorded at creation) so the
    // offload engine can route eviction records back to this core.
    std::uint32_t rss_hash = 0;
    // Dynamic flow offload lifecycle — see core::Pipeline::ConnEntry.
    bool offload_pending = false;
    bool offload_active = false;
    std::uint64_t offload_park_pkts = 0;

    SubMask alive() const noexcept { return touched & ~dropped; }
  };

  using Table = conntrack::ConnTable<ConnEntry>;
  using ConnId = Table::ConnId;

  struct ProtoCandidate {
    std::size_t app_proto_id;
    std::string name;
    bool over_tcp;
    std::unique_ptr<protocols::ConnParser> prototype;
  };

  /// Per-subscription telemetry handles (null when detached).
  struct SubInstruments {
    util::RelaxedCell* matched = nullptr;
    util::RelaxedCell* delivered = nullptr;
    util::RelaxedCell* shed = nullptr;
    util::RelaxedCell* cycles = nullptr;
  };

  core::Level level(std::size_t sub) const { return levels_[sub]; }
  /// Members that still need probe/parse work on this connection.
  SubMask parse_pending(const ConnEntry& entry) const noexcept {
    return entry.alive() & ~entry.settled;
  }
  /// All members gave up: the entry is a tombstone.
  bool defunct(const ConnEntry& entry) const noexcept {
    return entry.touched != 0 && entry.alive() == 0;
  }

  void process_one(packet::Mbuf& mbuf,
                   const std::optional<packet::PacketView>& view,
                   const packet::FiveTuple::Canonical* canon,
                   std::uint64_t canon_hash, const SubMask* mask_hint,
                   const filter::FilterResult* results,
                   bool housekeeping = true);
  void handle_stateful(packet::Mbuf& mbuf, const packet::PacketView& view,
                       SubMask want, const filter::FilterResult* results,
                       const packet::FiveTuple::Canonical& canon,
                       std::uint64_t key_hash);
  ConnId create_conn(const packet::FiveTuple& canonical_key,
                     bool originator_is_first, SubMask want,
                     const filter::FilterResult* results, bool is_tcp,
                     std::uint64_t ts_ns, std::uint32_t rss_hash);
  /// Admit member `sub` to the connection (first packet of the conn that
  /// its packet filter matched).
  void join_sub(ConnId id, ConnEntry& entry, std::size_t sub,
                const filter::FilterResult& pf_result);
  void update_record(ConnEntry& entry, const packet::PacketView& view,
                     bool from_orig, std::uint64_t ts_ns);
  void feed_pdus(ConnId id, ConnEntry& entry, packet::Mbuf& mbuf,
                 const packet::PacketView& view, bool from_orig);
  void handle_pdu(ConnId id, ConnEntry& entry, stream::L4Pdu pdu);
  void probe_pdu(ConnId id, ConnEntry& entry, const stream::L4Pdu& pdu);
  void run_conn_filter_sub(ConnId id, ConnEntry& entry, std::size_t sub);
  void parse_pdu(ConnId id, ConnEntry& entry, const stream::L4Pdu& pdu);
  void handle_sessions(ConnId id, ConnEntry& entry,
                       std::vector<protocols::Session> sessions);

  void clear_probe_state(ConnEntry& entry);
  void stream_pdu_sub(ConnEntry& entry, std::size_t sub,
                      const stream::L4Pdu& pdu);
  void deliver_stream_chunk(const ConnEntry& entry, std::size_t sub,
                            const stream::L4Pdu& pdu);
  void deliver_packet_sub(std::size_t sub, const packet::Mbuf& mbuf);
  void flush_on_match_sub(ConnEntry& entry, std::size_t sub);
  void mark_matched(ConnEntry& entry, std::size_t sub);
  void drop_sub(ConnEntry& entry, std::size_t sub,
                bool count_filter_drop = true);
  void release_sub_buffers(ConnEntry& entry, std::size_t sub);
  /// Resolve member `sub`'s fate without probing or parsing (shed path
  /// and probe-failure path share this logic via app_proto = 0).
  void settle_sub_without_parsing(ConnId id, ConnEntry& entry,
                                  std::size_t sub);
  /// Recompute the union state once no member needs probe/parse work:
  /// Track while anyone is alive, tombstone otherwise. No-op while a
  /// member still wants parsing.
  void settle_union(ConnEntry& entry);
  void to_tombstone(ConnEntry& entry);
  void terminate_conn(ConnId id, ConnEntry& entry,
                      core::TerminateReason reason, bool remove_from_table);
  /// End-of-packet hook: offload the flow once every member has
  /// settled into a per-packet-work-free state.
  void maybe_request_offload(ConnId id, ConnEntry& entry);

  // --- Overload: global budgets + per-subscription staged ladder ---
  overload::DegradeLevel degrade_level() const noexcept {
    return overload_ != nullptr ? overload_->level()
                                : overload::DegradeLevel::kNormal;
  }
  bool degraded_to(overload::DegradeLevel at_least) const noexcept {
    return static_cast<int>(degrade_level()) >= static_cast<int>(at_least);
  }
  /// Members whose *staged* level is at or past `at_least` (cached per
  /// global level; ranks change rarely).
  SubMask staged_mask(overload::DegradeLevel at_least) noexcept;
  void refresh_staged_masks(overload::DegradeLevel global) noexcept;
  /// Re-rank members by attributed cycles (costliest = rank 0).
  void recompute_cost_ranks();
  void shed_global(overload::ShedStage stage);
  void shed_sub(overload::ShedStage stage, std::size_t sub);
  void add_sub_cycles(std::size_t sub, std::uint64_t cycles);
  bool admit_connection() const;
  bool buffering_allowed() const;
  bool reassembly_shed() const;
  bool parse_budget_ok(std::uint64_t ts_ns);
  void flush_buffered_sub(ConnEntry& entry, std::size_t sub);
  void maybe_sample_memory(std::uint64_t ts_ns);

  const core::RuntimeConfig& config_;
  const SubscriptionSet& set_;
  const FilterForest& forest_;
  const protocols::ParserRegistry& parser_registry_;

  std::vector<core::Level> levels_;  // cached per member
  SubMask packet_level_mask_ = 0;
  SubMask stream_level_mask_ = 0;
  SubMask session_level_mask_ = 0;
  SubMask conn_level_mask_ = 0;

  std::vector<ProtoCandidate> candidates_;  // union probe order
  std::uint32_t tcp_candidate_mask_ = 0;
  std::uint32_t udp_candidate_mask_ = 0;

  Table table_;
  core::PipelineStats stats_;
  std::vector<SubStats> sub_stats_;
  core::PipelineInstruments inst_;
  std::vector<SubInstruments> sub_inst_;
  telemetry::SpanRing* spans_ = nullptr;
  std::int64_t heap_bytes_ = 0;
  std::uint64_t next_sample_ts_ = 0;
  std::uint64_t last_ts_ = 0;

  // Per-packet scratch, owned per core (the forest itself is shared and
  // immutable): predicate memo for the packet epoch, a second memo for
  // session epochs, the per-member result array, the SoA burst view the
  // batch program sweeps, its per-slot match masks (one 32-bit lane
  // mask per distinct bank predicate), and kMaxBurst slots of
  // sub_count() results — all allocated once so the burst path never
  // allocates.
  EvalScratch pkt_scratch_;
  EvalScratch session_scratch_;
  std::vector<filter::FilterResult> pf_results_;
  std::vector<filter::FilterResult> burst_pf_;
  packet::SoaBurstView soa_;
  std::vector<filter::BatchProgram::Mask> slot_masks_;

  overload::OverloadState* overload_ = nullptr;
  sink::FlowSink* sink_ = nullptr;  // borrowed; may be null
  std::size_t sink_core_ = 0;
  core::OffloadRequester* offload_requester_ = nullptr;  // borrowed
  std::size_t offload_core_ = 0;
  std::int64_t reasm_hold_bytes_ = 0;
  std::int64_t parse_tokens_ = 0;
  std::uint64_t parse_refill_ts_ = 0;
  bool parse_bucket_primed_ = false;
  bool attribute_cycles_ = false;  // per-member rdtsc attribution on?

  // Cost ranks for the staged ladder: rank 0 = costliest member. All
  // ranks start at 0 (every member degrades together, matching the
  // single-subscription ladder) until cycle attribution separates them.
  std::vector<std::uint32_t> cost_rank_;
  std::uint64_t packets_until_rerank_ = 0;
  overload::DegradeLevel staged_cached_ = overload::DegradeLevel::kNormal;
  bool staged_masks_valid_ = false;
  SubMask staged_masks_[static_cast<int>(overload::DegradeLevel::kCount)] = {};
};

}  // namespace retina::multisub

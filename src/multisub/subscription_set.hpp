// SubscriptionSet: N independent subscriptions sharing one runtime
// (paper §3.2 allows "multiple subscriptions compiled into the same
// application"; this module makes them share the data path instead of
// running N pipelines). The set is the unit the filter forest and the
// multi-subscription pipeline are built from: each member keeps its own
// filter, callback, and data-abstraction level, and the engine
// guarantees the callback stream each member observes is the one it
// would have observed running alone (for the usual flow-constant
// packet predicates), while every shared predicate is evaluated once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/subscription.hpp"
#include "util/result.hpp"

namespace retina::multisub {

/// Bit s set = subscription index s selected. The whole engine rides on
/// 64-bit masks, which caps a set at 64 members (plenty: the paper's
/// applications use a handful).
using SubMask = std::uint64_t;

inline constexpr SubMask sub_bit(std::size_t index) {
  return SubMask{1} << index;
}

class SubscriptionSet {
 public:
  class Builder;

  static constexpr std::size_t kMaxSubscriptions = 64;

  /// Entry point of the fluent API, mirroring Subscription::builder():
  ///
  ///   auto set = SubscriptionSet::builder()
  ///                  .add(std::move(tls_sub), "tls-sni")
  ///                  .add(Subscription::builder()
  ///                           .filter("http")
  ///                           .on_session(...)
  ///                           .build())
  ///                  .build();
  static Builder builder();

  std::size_t size() const noexcept { return subs_.size(); }
  bool empty() const noexcept { return subs_.empty(); }
  const core::Subscription& at(std::size_t index) const {
    return subs_.at(index);
  }
  /// Diagnostic / telemetry label of subscription `index` ("sub<i>"
  /// unless the builder named it).
  const std::string& name(std::size_t index) const {
    return names_.at(index);
  }
  const std::vector<core::Subscription>& subscriptions() const noexcept {
    return subs_;
  }

 private:
  friend class Builder;
  SubscriptionSet() = default;

  std::vector<core::Subscription> subs_;
  std::vector<std::string> names_;
};

/// Fluent, validating constructor. `add` accepts either a finished
/// Subscription or the Result a Subscription::Builder::build() returned,
/// so bad filters surface once, at set build time:
/// a failed member is remembered and reported by build() with its name.
class SubscriptionSet::Builder {
 public:
  Builder& add(core::Subscription subscription, std::string name = "") &;
  Builder&& add(core::Subscription subscription, std::string name = "") &&;
  Builder& add(Result<core::Subscription> subscription,
               std::string name = "") &;
  Builder&& add(Result<core::Subscription> subscription,
                std::string name = "") &&;

  /// Validate and construct: at least one member, at most
  /// kMaxSubscriptions, no duplicate names, and no member whose earlier
  /// build() failed.
  Result<SubscriptionSet> build() const;

 private:
  std::vector<core::Subscription> subs_;
  std::vector<std::string> names_;
  std::vector<std::string> errors_;  // deferred per-member failures
};

}  // namespace retina::multisub

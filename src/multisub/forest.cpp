#include "multisub/forest.hpp"

namespace retina::multisub {

using filter::FilterLayer;
using filter::FilterResult;
using filter::MatchKind;

Result<FilterForest> FilterForest::build(const SubscriptionSet& set,
                                         const filter::FieldRegistry& registry,
                                         const nic::NicCapabilities& caps) {
  FilterForest forest;
  forest.views_.reserve(set.size());

  for (std::size_t s = 0; s < set.size(); ++s) {
    // Per-subscription decomposition first: hardware-rule validation and
    // capability widening happen per member, so one subscription needing
    // a software fallback never widens another's rules.
    auto decomposed =
        filter::try_decompose(set.at(s).filter(), registry, caps);
    if (!decomposed) {
      return Err("subscription '" + set.name(s) + "': " +
                 decomposed.error());
    }

    const auto id_map =
        forest.merged_.graft(decomposed->trie, static_cast<std::uint32_t>(s));
    for (const auto& rule : decomposed->hw_rules.rules()) {
      forest.hw_rules_.add_unique(rule);
    }

    SubView view;
    view.source = decomposed->source;
    view.needs_conn = decomposed->needs_conn_stage();
    view.needs_session = decomposed->needs_session_stage();
    view.app_protos = decomposed->app_protos;
    view.reachable = decomposed->trie.reachable_size();
    const auto& nodes = decomposed->trie.nodes();
    view.nodes.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& src = nodes[i];
      auto& dst = view.nodes[i];
      dst.layer = src.pred.layer;
      dst.terminal = src.terminal;
      dst.children = src.children;
      dst.path = decomposed->trie.path_to(src.id);
      if (i == 0 || id_map[i] == filter::PredicateTrie::kNoNode) continue;
      // The grafted twin's eval slot indexes the *shared* bank: two
      // subscriptions holding the same predicate land on the same slot.
      dst.slot = forest.merged_.node(id_map[i]).eval_slot;
      if (src.pred.layer == FilterLayer::kConnection) {
        dst.app_proto = registry.require(src.pred.pred.proto).app_proto_id;
      }
    }
    for (auto& node : view.nodes) {
      for (const auto child : node.children) {
        if (view.nodes[child].layer != FilterLayer::kPacket) {
          node.has_conn_descendant = true;
          break;
        }
      }
    }
    forest.views_.push_back(std::move(view));
  }

  // One bank slot (thunk + batch kernel) per distinct predicate across
  // the whole set — the same PredicateBank the single-subscription
  // CompiledFilter evaluates through, compiled from the merged trie.
  auto bank = filter::PredicateBank::compile(forest.merged_, registry);
  if (!bank) return Err(bank.error());
  forest.bank_ = std::move(*bank);

  return forest;
}

bool FilterForest::packet_dfs(const SubView& view, std::uint32_t id,
                              const packet::PacketView& pkt,
                              EvalScratch& scratch,
                              FilterResult& best) const {
  const auto& node = view.nodes[id];
  for (const auto child_id : node.children) {
    const auto& child = view.nodes[child_id];
    if (child.layer != FilterLayer::kPacket) continue;
    if (!eval_packet(child.slot, pkt, scratch)) continue;

    if (child.terminal) {
      best = FilterResult::terminal_match(child_id);
      return true;  // a satisfied pattern: this subscription matches
    }
    if (child.has_conn_descendant) {
      // Deeper matches are more specific; keep the deepest.
      if (best.kind == MatchKind::kNoMatch ||
          view.nodes[best.node_id].path.size() < child.path.size()) {
        best = FilterResult::non_terminal(child_id);
      }
    }
    if (packet_dfs(view, child_id, pkt, scratch, best)) return true;
  }
  return false;
}

SubMask FilterForest::packet_filter(const packet::PacketView& pkt,
                                    EvalScratch& scratch,
                                    FilterResult* results) const {
  scratch.begin();
  SubMask matched = 0;
  for (std::size_t s = 0; s < views_.size(); ++s) {
    FilterResult best = FilterResult::no_match();
    packet_dfs(views_[s], 0, pkt, scratch, best);
    results[s] = best;
    if (best.matched()) matched |= sub_bit(s);
  }
  return matched;
}

SubMask FilterForest::packet_filter_batched(
    const packet::SoaBurstView& soa, std::size_t lane,
    const filter::BatchProgram::Mask* slot_masks, EvalScratch& scratch,
    FilterResult* results) const {
  scratch.begin();
  // The batch program already decided every distinct packet predicate
  // for this lane; preset the memo so the walk below reads verdicts
  // instead of calling thunks. Session slots stay unset (their layer
  // never evaluates here), so the walk is exactly packet_filter's.
  const auto lane_bit = filter::BatchProgram::Mask{1} << lane;
  for (const auto slot : bank_.packet_slots()) {
    scratch.preset(slot, (slot_masks[slot] & lane_bit) != 0);
  }
  const auto& pkt = *soa.view(lane);
  SubMask matched = 0;
  for (std::size_t s = 0; s < views_.size(); ++s) {
    FilterResult best = FilterResult::no_match();
    packet_dfs(views_[s], 0, pkt, scratch, best);
    results[s] = best;
    if (best.matched()) matched |= sub_bit(s);
  }
  return matched;
}

FilterResult FilterForest::conn_filter(std::size_t sub,
                                       std::uint32_t pkt_term_node,
                                       std::size_t app_proto_id) const {
  const auto& view = views_[sub];
  if (pkt_term_node >= view.nodes.size()) return FilterResult::no_match();

  // Connection predicates can hang off any node along the matched packet
  // path (same walk as CompiledFilter::conn_filter).
  FilterResult best = FilterResult::no_match();
  for (const auto path_id : view.nodes[pkt_term_node].path) {
    for (const auto child_id : view.nodes[path_id].children) {
      const auto& child = view.nodes[child_id];
      if (child.layer != FilterLayer::kConnection) continue;
      if (child.app_proto != app_proto_id) continue;
      if (child.terminal) {
        return FilterResult::terminal_match(child_id);
      }
      best = FilterResult::non_terminal(child_id);
    }
  }
  return best;
}

bool FilterForest::session_dfs(const SubView& view, std::uint32_t id,
                               const protocols::Session& session,
                               EvalScratch& scratch) const {
  const auto& node = view.nodes[id];
  if (!scratch.memo(node.slot,
                    [&] { return bank_.eval_session(node.slot, session); })) {
    return false;
  }
  if (node.terminal) return true;
  for (const auto child_id : node.children) {
    if (view.nodes[child_id].layer != FilterLayer::kSession) continue;
    if (session_dfs(view, child_id, session, scratch)) return true;
  }
  return false;
}

bool FilterForest::session_filter(std::size_t sub,
                                  std::uint32_t conn_term_node,
                                  const protocols::Session& session,
                                  EvalScratch& scratch) const {
  const auto& view = views_[sub];
  if (conn_term_node >= view.nodes.size()) return false;
  const auto& conn_node = view.nodes[conn_term_node];
  if (conn_node.terminal) return true;  // already fully matched

  for (const auto child_id : conn_node.children) {
    if (view.nodes[child_id].layer != FilterLayer::kSession) continue;
    if (session_dfs(view, child_id, session, scratch)) return true;
  }
  return false;
}

}  // namespace retina::multisub

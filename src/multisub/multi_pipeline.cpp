#include "multisub/multi_pipeline.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "packet/packet_view.hpp"
#include "sink/sink.hpp"
#include "util/cycles.hpp"

namespace retina::multisub {

namespace {

using conntrack::ConnState;
using core::Level;
using core::Stage;
using filter::FilterResult;
using filter::MatchKind;

/// Scoped cycle accounting for one stage — same contract as the
/// single-subscription pipeline's StageScope (stage counters are
/// per *pipeline* stage; per-member attribution rides separately on
/// add_sub_cycles).
class StageScope {
 public:
  StageScope(core::PipelineStats& stats, Stage stage, bool enabled,
             const core::PipelineInstruments* inst = nullptr)
      : stats_(stats), stage_(stage), enabled_(enabled), inst_(inst) {
    if (enabled_) {
      stats_.stages.add(stage_);
      if (inst_ != nullptr) {
        if (auto* cell = inst_->stage_invocations[static_cast<int>(stage_)]) {
          cell->inc();
        }
      }
      start_ = util::rdtsc();
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  ~StageScope() {
    if (enabled_) {
      const auto cycles = util::rdtsc() - start_;
      stats_.stages.add_cycles(stage_, cycles);
      if (inst_ != nullptr) {
        if (auto* hist = inst_->stage_cycles[static_cast<int>(stage_)]) {
          hist->record(cycles);
        }
      }
    }
  }

 private:
  core::PipelineStats& stats_;
  Stage stage_;
  bool enabled_;
  const core::PipelineInstruments* inst_;
  std::uint64_t start_ = 0;
};

packet::FiveTuple oriented(const packet::FiveTuple& key, bool orig_first) {
  if (orig_first) return key;
  return packet::FiveTuple{key.dst, key.src, key.dst_port, key.src_port,
                           key.proto};
}

// Rough per-object heap estimates (same constants as core::Pipeline so
// the Fig. 8 accounting is comparable between the two engines).
constexpr std::uint64_t kParserEstimateBytes = 1024;
constexpr std::uint64_t kOooPduEstimateBytes = 1024;  // held mbuf + handle
constexpr std::uint64_t kReassemblerBytes = sizeof(stream::StreamReassembler);

// Cost ranks are recomputed from attributed cycles every this many
// packets — cheap (<= 64 members) and fast enough that the staged
// ladder tracks shifting workloads.
constexpr std::uint64_t kRerankInterval = 8192;

inline std::size_t bit_index(SubMask m) noexcept {
  return static_cast<std::size_t>(std::countr_zero(m));
}

}  // namespace

MultiPipeline::MultiPipeline(const core::RuntimeConfig& config,
                             const SubscriptionSet& set,
                             const FilterForest& forest,
                             const filter::FieldRegistry& field_registry,
                             const protocols::ParserRegistry& parser_registry)
    : config_(config),
      set_(set),
      forest_(forest),
      parser_registry_(parser_registry),
      table_(config.timeouts) {
  const std::size_t n = set_.size();
  levels_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto lvl = set_.at(s).level();
    levels_.push_back(lvl);
    const auto bit = sub_bit(s);
    switch (lvl) {
      case Level::kPacket: packet_level_mask_ |= bit; break;
      case Level::kConnection: conn_level_mask_ |= bit; break;
      case Level::kSession: session_level_mask_ |= bit; break;
      case Level::kStream: stream_level_mask_ |= bit; break;
    }
  }

  // The probed parser set is the union of the members' sets, each
  // computed exactly as the single-subscription pipeline computes its
  // own (filter protocols + extra parsers; a session-level member with
  // no protocol constraint probes everything).
  std::set<std::size_t> wanted;
  for (std::size_t s = 0; s < n; ++s) {
    std::set<std::size_t> member = forest_.app_protos(s);
    for (const auto& name : set_.at(s).extra_parsers()) {
      member.insert(field_registry.require(name).app_proto_id);
    }
    if (levels_[s] == Level::kSession && member.empty()) {
      for (const auto& name : parser_registry_.names()) {
        if (const auto* proto = field_registry.find(name)) {
          member.insert(proto->app_proto_id);
        }
      }
    }
    wanted.insert(member.begin(), member.end());
  }
  for (const auto app_id : wanted) {
    const auto& name = field_registry.app_proto_name(app_id);
    if (name.empty() || !parser_registry_.has(name)) continue;
    const auto* proto = field_registry.find(name);
    ProtoCandidate candidate;
    candidate.app_proto_id = app_id;
    candidate.name = name;
    candidate.over_tcp = proto->transport == "tcp";
    candidate.prototype = parser_registry_.create(name);
    const auto bit = 1u << candidates_.size();
    (candidate.over_tcp ? tcp_candidate_mask_ : udp_candidate_mask_) |= bit;
    candidates_.push_back(std::move(candidate));
  }

  sub_stats_.resize(n);
  sub_inst_.resize(n);
  cost_rank_.assign(n, 0);
  pkt_scratch_ = forest_.make_scratch();
  session_scratch_ = forest_.make_scratch();
  pf_results_.assign(n, FilterResult::no_match());
  burst_pf_.assign(kMaxBurst * n, FilterResult::no_match());
  slot_masks_.assign(forest_.bank_size(), 0);
  attribute_cycles_ = config_.overload.enabled;
  packets_until_rerank_ = kRerankInterval;
  if (config_.memory_sample_interval_ns > 0) {
    next_sample_ts_ = 0;  // first packet triggers the first sample
  }
}

void MultiPipeline::attach_telemetry(telemetry::MetricRegistry& registry,
                                     std::size_t core,
                                     telemetry::SpanRing* spans) {
  inst_.packets =
      &registry.counter("retina_packets_total",
                        "Packets polled from the receive queue").at(core);
  inst_.bytes =
      &registry.counter("retina_bytes_total",
                        "Wire bytes polled from the receive queue").at(core);
  inst_.conns_created =
      &registry.counter("retina_conns_created_total",
                        "Connections inserted into the table").at(core);
  inst_.conns_expired =
      &registry.counter("retina_conns_expired_total",
                        "Connections removed by inactivity timeout").at(core);
  inst_.conns_terminated =
      &registry.counter("retina_conns_terminated_total",
                        "Connections closed by FIN/RST").at(core);
  inst_.sessions =
      &registry.counter("retina_sessions_parsed_total",
                        "Application-layer sessions parsed").at(core);
  inst_.callbacks =
      &registry.counter("retina_callbacks_total",
                        "Subscription callback invocations").at(core);
  inst_.live_conns =
      &registry.gauge("retina_live_connections",
                      "Connections currently tracked").at(core);
  inst_.state_bytes =
      &registry.gauge("retina_state_bytes",
                      "Approximate bytes of connection state held").at(core);
  for (int i = 0; i < static_cast<int>(Stage::kCount); ++i) {
    const auto stage = static_cast<Stage>(i);
    inst_.stage_invocations[i] =
        &registry.counter("retina_stage_invocations_total",
                          "Times each pipeline stage ran", "stage",
                          core::stage_name(stage)).at(core);
    inst_.stage_cycles[i] =
        &registry.histogram("retina_stage_cycles",
                            "Per-invocation CPU cycles of each stage",
                            "stage", core::stage_name(stage)).at(core);
  }
  inst_.burst_occupancy =
      &registry.histogram("retina_burst_occupancy",
                          "Packets per received burst").at(core);
  inst_.burst_cycles =
      &registry.histogram("retina_burst_cycles",
                          "CPU cycles per processed burst").at(core);
  for (int i = 0; i < static_cast<int>(overload::ShedStage::kCount); ++i) {
    const auto stage = static_cast<overload::ShedStage>(i);
    inst_.shed_cells[i] =
        &registry.counter("retina_shed_total",
                          "Work refused by overload shedding", "stage",
                          overload::shed_stage_name(stage)).at(core);
  }
  for (std::size_t s = 0; s < set_.size(); ++s) {
    const auto& label = set_.name(s);
    sub_inst_[s].matched =
        &registry.counter("retina_sub_conns_matched_total",
                          "Connections terminally matched, per subscription",
                          "subscription", label).at(core);
    sub_inst_[s].delivered =
        &registry.counter("retina_sub_delivered_total",
                          "Callback invocations, per subscription",
                          "subscription", label).at(core);
    sub_inst_[s].shed =
        &registry.counter("retina_sub_shed_total",
                          "Work shed by overload control, per subscription",
                          "subscription", label).at(core);
    sub_inst_[s].cycles =
        &registry.counter("retina_sub_cycles_total",
                          "Attributed CPU cycles, per subscription",
                          "subscription", label).at(core);
  }
  spans_ = spans;
  attribute_cycles_ = true;  // cycle attribution feeds the new counters
}

// --- Overload plumbing -----------------------------------------------

void MultiPipeline::shed_global(overload::ShedStage stage) {
  ++stats_.shed[static_cast<int>(stage)];
  if (auto* cell = inst_.shed_cells[static_cast<int>(stage)]) cell->inc();
}

void MultiPipeline::shed_sub(overload::ShedStage stage, std::size_t sub) {
  shed_global(stage);  // the global counters roll up every member's sheds
  ++sub_stats_[sub].shed;
  if (auto* cell = sub_inst_[sub].shed) cell->inc();
}

void MultiPipeline::add_sub_cycles(std::size_t sub, std::uint64_t cycles) {
  sub_stats_[sub].cycles += cycles;
  if (auto* cell = sub_inst_[sub].cycles) cell->add(cycles);
}

SubMask MultiPipeline::staged_mask(overload::DegradeLevel at_least) noexcept {
  const auto global = degrade_level();
  if (!staged_masks_valid_ || global != staged_cached_) {
    refresh_staged_masks(global);
  }
  return staged_masks_[static_cast<int>(at_least)];
}

void MultiPipeline::refresh_staged_masks(
    overload::DegradeLevel global) noexcept {
  for (auto& mask : staged_masks_) mask = 0;
  for (std::size_t s = 0; s < cost_rank_.size(); ++s) {
    const auto staged =
        static_cast<int>(overload::staged_level(global, cost_rank_[s]));
    for (int lvl = 0; lvl <= staged; ++lvl) {
      staged_masks_[lvl] |= sub_bit(s);
    }
  }
  staged_cached_ = global;
  staged_masks_valid_ = true;
}

void MultiPipeline::recompute_cost_ranks() {
  const std::size_t n = sub_stats_.size();
  std::array<std::size_t, SubscriptionSet::kMaxSubscriptions> order;
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
                   [&](std::size_t a, std::size_t b) {
                     return sub_stats_[a].cycles > sub_stats_[b].cycles;
                   });
  // Dense-ish ranking: members with *equal* attributed cost share a rank
  // and degrade together. In particular, before any cycles separate the
  // members everyone stays at rank 0 — the whole set degrades in
  // lockstep, exactly like the single-subscription ladder.
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 &&
        sub_stats_[order[i]].cycles < sub_stats_[order[i - 1]].cycles) {
      rank = static_cast<std::uint32_t>(i);
    }
    cost_rank_[order[i]] = rank;
  }
  staged_masks_valid_ = false;
}

overload::DegradeLevel MultiPipeline::staged_level_of(std::size_t sub) const {
  return overload::staged_level(degrade_level(), cost_rank_.at(sub));
}

void MultiPipeline::set_cost_order_for_test(
    std::span<const std::size_t> costliest_first) {
  for (std::size_t i = 0; i < costliest_first.size(); ++i) {
    cost_rank_.at(costliest_first[i]) = static_cast<std::uint32_t>(i);
  }
  staged_masks_valid_ = false;
  // Keep the pinned order: push the periodic re-rank out of reach.
  packets_until_rerank_ = ~std::uint64_t{0};
}

bool MultiPipeline::admit_connection() const {
  // Global budgets only — the kCountOnly ladder rung is applied per
  // member (staged_mask) by the caller, so a cheap member may still be
  // admitted while the costliest is count-only.
  const auto& policy = config_.overload;
  if (!policy.enabled) return true;
  if (policy.max_tracked_connections != 0 &&
      table_.size() >= policy.max_tracked_connections) {
    return false;
  }
  if (policy.max_state_bytes != 0) {
    const auto heap =
        static_cast<std::uint64_t>(heap_bytes_ > 0 ? heap_bytes_ : 0);
    if (table_.approx_bytes_after_insert() + heap >= policy.max_state_bytes) {
      return false;
    }
  }
  return true;
}

bool MultiPipeline::buffering_allowed() const {
  // Global byte budget only; the kShedReassembly rung gates buffering
  // per member at the call sites.
  const auto& policy = config_.overload;
  if (policy.enabled && policy.max_state_bytes != 0 &&
      approx_state_bytes() >= policy.max_state_bytes) {
    return false;
  }
  return true;
}

bool MultiPipeline::reassembly_shed() const {
  // Global reassembly byte budget; the ladder rung is per member.
  const auto& policy = config_.overload;
  return policy.enabled && policy.max_reassembly_bytes != 0 &&
         reasm_hold_bytes_ >=
             static_cast<std::int64_t>(policy.max_reassembly_bytes);
}

bool MultiPipeline::parse_budget_ok(std::uint64_t ts_ns) {
  const auto rate = config_.overload.parse_cycles_per_sec;
  if (!config_.overload.enabled || rate == 0) return true;
  if (!parse_bucket_primed_) {
    parse_tokens_ = static_cast<std::int64_t>(rate);
    parse_refill_ts_ = ts_ns;
    parse_bucket_primed_ = true;
  }
  if (ts_ns > parse_refill_ts_) {
    const double earned = static_cast<double>(ts_ns - parse_refill_ts_) /
                          1e9 * static_cast<double>(rate);
    parse_tokens_ = std::min<std::int64_t>(
        parse_tokens_ + static_cast<std::int64_t>(earned),
        static_cast<std::int64_t>(rate));
    parse_refill_ts_ = ts_ns;
  }
  return parse_tokens_ > 0;
}

std::uint64_t MultiPipeline::approx_state_bytes() const {
  const auto heap = heap_bytes_ > 0 ? heap_bytes_ : 0;
  return table_.approx_bytes() + static_cast<std::uint64_t>(heap);
}

void MultiPipeline::maybe_sample_memory(std::uint64_t ts_ns) {
  if (config_.memory_sample_interval_ns == 0) return;
  if (ts_ns < next_sample_ts_) return;
  stats_.memory_samples.push_back(
      core::MemorySample{ts_ns, table_.size(), approx_state_bytes()});
  next_sample_ts_ = ts_ns + config_.memory_sample_interval_ns;
}

// --- Packet entry points ---------------------------------------------

void MultiPipeline::process(packet::Mbuf mbuf) {
  const std::uint64_t t0 = util::rdtsc();
  ++stats_.packets;
  stats_.bytes += mbuf.length();
  if (inst_.packets != nullptr) {
    inst_.packets->inc();
    inst_.bytes->add(mbuf.length());
  }
  const auto view = packet::PacketView::parse(mbuf);
  process_one(mbuf, view, /*canon=*/nullptr, /*canon_hash=*/0,
              /*mask_hint=*/nullptr, /*results=*/nullptr);
  stats_.busy_cycles += util::rdtsc() - t0;
}

void MultiPipeline::process_burst(std::span<packet::Mbuf> burst) {
  while (burst.size() > kMaxBurst) {
    process_burst(burst.first(kMaxBurst));
    burst = burst.subspan(kMaxBurst);
  }
  if (burst.empty()) return;
  const std::uint64_t t0 = util::rdtsc();
  const std::size_t n = burst.size();
  const std::size_t nsubs = sub_stats_.size();
  using Mask = packet::SoaBurstView::Mask;

  // Housekeeping hoist — identical reasoning to core::Pipeline.
  std::uint64_t burst_max_ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    burst_max_ts = std::max(burst_max_ts, burst[i].timestamp_ns());
  }
  const bool housekeeping =
      config_.memory_sample_interval_ns != 0 ||
      table_.timers_due(std::max(last_ts_, burst_max_ts));

  // Columnar batch sweep: one SoA parse, then ONE batch-program run
  // decides every distinct packet predicate of the shared bank for all
  // lanes; the per-lane forest walk reads verdicts through the preset
  // memo, so the dedup across subscriptions AND the dedup across lanes
  // compose. Stage accounting matches the per-packet path: n logical
  // invocations, cycles measured once for the whole burst.
  soa_.parse(burst);
  std::array<SubMask, kMaxBurst> masks;
  {
    const bool instr = config_.instrument_stages;
    std::uint64_t f0 = 0;
    if (instr) {
      stats_.stages.add(Stage::kPacketFilter, n);
      if (auto* cell =
              inst_.stage_invocations[static_cast<int>(Stage::kPacketFilter)]) {
        cell->add(n);
      }
      f0 = util::rdtsc();
    }
    forest_.eval_batch(soa_, slot_masks_.data());
    const auto eth = soa_.eth_mask();
    for (std::size_t i = 0; i < n; ++i) {
      masks[i] = (eth >> i) & 1u
                     ? forest_.packet_filter_batched(soa_, i, slot_masks_.data(),
                                                     pkt_scratch_,
                                                     burst_pf_.data() + i * nsubs)
                     : SubMask{0};
    }
    if (instr) {
      const auto cycles = util::rdtsc() - f0;
      stats_.stages.add_cycles(Stage::kPacketFilter, cycles);
      if (auto* hist =
              inst_.stage_cycles[static_cast<int>(Stage::kPacketFilter)]) {
        hist->record(cycles);
      }
    }
  }

  // Canonicalize + hash exactly the lanes the stateful pass will look
  // up: some matching member is NOT a packet-terminal packet-level
  // subscription (those take the table-free fast path).
  Mask want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (masks[i] == 0) continue;
    const FilterResult* pf = burst_pf_.data() + i * nsubs;
    SubMask stateful = 0;
    for (SubMask m = masks[i]; m != 0; m &= m - 1) {
      const std::size_t sub = bit_index(m);
      if (!(pf[sub].terminal() && levels_[sub] == Level::kPacket)) {
        stateful |= sub_bit(sub);
      }
    }
    if (stateful != 0) want |= Mask{1} << i;
  }
  soa_.hash_tuples(want);
  const Mask tupled = want & soa_.tuple_mask();
  std::array<std::uint8_t, kMaxBurst> tupled_lanes;
  std::size_t n_tupled = 0;
  for (Mask m = tupled; m != 0; m &= m - 1) {
    const auto i = static_cast<unsigned>(std::countr_zero(m));
    tupled_lanes[n_tupled++] = static_cast<std::uint8_t>(i);
    table_.prefetch_hashed(soa_.hash(i));
  }

  // Stateful pass, in arrival order (see core::Pipeline::process_burst
  // for the prefetch-distance rationale). Rejected lanes are only
  // skipped when process_one would be a provable no-op for them: no
  // housekeeping due, and no rerank countdown ticking per packet.
  const bool skip_unmatched =
      !housekeeping && !(attribute_cycles_ && overload_ != nullptr);
  constexpr std::size_t kSlotDistance = 2;
  std::uint64_t bytes_acc = 0;
  std::size_t next_tupled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bytes_acc += burst[i].length();
    const bool is_tupled = (tupled >> i) & 1u;
    if (is_tupled) {
      if (next_tupled + kSlotDistance < n_tupled) {
        table_.prefetch_slot_hashed(
            soa_.hash(tupled_lanes[next_tupled + kSlotDistance]));
      }
      ++next_tupled;
    }
    if (skip_unmatched && masks[i] == 0) continue;
    process_one(burst[i], soa_.view(i), is_tupled ? &soa_.canon(i) : nullptr,
                is_tupled ? soa_.hash(i) : 0, &masks[i],
                burst_pf_.data() + i * nsubs, housekeeping);
  }

  if (!housekeeping) last_ts_ = std::max(last_ts_, burst_max_ts);
  stats_.packets += n;
  stats_.bytes += bytes_acc;
  if (inst_.packets != nullptr) {
    inst_.packets->add(n);
    inst_.bytes->add(bytes_acc);
  }

  const std::uint64_t cycles = util::rdtsc() - t0;
  stats_.busy_cycles += cycles;
  if (inst_.burst_occupancy != nullptr) {
    inst_.burst_occupancy->record(burst.size());
    inst_.burst_cycles->record(cycles);
  }
}

void MultiPipeline::process_one(packet::Mbuf& mbuf,
                                const std::optional<packet::PacketView>& view,
                                const packet::FiveTuple::Canonical* canon,
                                std::uint64_t canon_hash,
                                const SubMask* mask_hint,
                                const filter::FilterResult* results,
                                bool housekeeping) {
  if (housekeeping) {
    last_ts_ = std::max(last_ts_, mbuf.timestamp_ns());
    table_.advance(last_ts_, [this](ConnId id, ConnEntry& entry) {
      ++stats_.conns_expired;
      if (inst_.conns_expired != nullptr) inst_.conns_expired->inc();
      if (spans_ != nullptr) {
        spans_->record(telemetry::SpanEvent::kExpired,
                       entry.record.tuple.hash(), last_ts_);
      }
      terminate_conn(id, entry, core::TerminateReason::kExpired,
                     /*remove_from_table=*/false);
    });
    maybe_sample_memory(last_ts_);
  }
  if (attribute_cycles_ && overload_ != nullptr &&
      --packets_until_rerank_ == 0) {
    recompute_cost_ranks();
    packets_until_rerank_ = kRerankInterval;
  }

  SubMask mask = 0;
  const FilterResult* res = results;
  if (mask_hint != nullptr) {
    // Burst path: the forest filter already ran (and was accounted) in
    // pass 1; `results` is that packet's staged per-member array.
    mask = *mask_hint;
  } else {
    StageScope scope(stats_, Stage::kPacketFilter, config_.instrument_stages,
                     &inst_);
    if (view) {
      mask = forest_.packet_filter(*view, pkt_scratch_, pf_results_.data());
    }
    res = pf_results_.data();
  }
  if (mask != 0 && overload_ != nullptr) {
    // kSink rung, staged per member: the SimNic's sink sampling is
    // flow-global, so the per-member rung silences the staged member in
    // software while cheaper members keep analyzing the same packets.
    mask &= ~staged_mask(overload::DegradeLevel::kSink);
  }
  if (mask == 0) return;

  // Packet-terminal packet-level members: deliver immediately, no
  // stateful processing for them (paper §5.1's fast path, per member).
  SubMask stateful = 0;
  for (SubMask m = mask; m != 0; m &= m - 1) {
    const std::size_t sub = bit_index(m);
    if (res[sub].terminal() && levels_[sub] == Level::kPacket) {
      StageScope scope(stats_, Stage::kCallback, config_.instrument_stages,
                       &inst_);
      deliver_packet_sub(sub, mbuf);
    } else {
      stateful |= sub_bit(sub);
    }
  }

  if (stateful != 0 && view && view->five_tuple()) {
    if (canon != nullptr) {
      handle_stateful(mbuf, *view, stateful, res, *canon, canon_hash);
    } else {
      const auto lazy = view->five_tuple()->canonical();
      handle_stateful(mbuf, *view, stateful, res, lazy, lazy.key.hash());
    }
  }
  const auto state_now = approx_state_bytes();
  if (state_now > stats_.peak_state_bytes) {
    stats_.peak_state_bytes = state_now;
  }
  if (inst_.live_conns != nullptr) {
    inst_.live_conns->set(table_.size());
    inst_.state_bytes->set(state_now);
  }
}

void MultiPipeline::handle_stateful(packet::Mbuf& mbuf,
                                    const packet::PacketView& view,
                                    SubMask want,
                                    const filter::FilterResult* results,
                                    const packet::FiveTuple::Canonical& canon,
                                    std::uint64_t key_hash) {
  const auto ts = mbuf.timestamp_ns();

  ConnId id;
  {
    StageScope scope(stats_, Stage::kConnTracking, config_.instrument_stages,
                     &inst_);
    id = table_.find_hashed(canon.key, key_hash);
    if (id == Table::kInvalid) {
      // kCountOnly is staged per member: the staged members' flows are
      // counted at the packet layer and never tracked *for them*, while
      // cheaper members may still create the connection.
      SubMask create_mask = want;
      if (overload_ != nullptr) {
        const SubMask counted =
            staged_mask(overload::DegradeLevel::kCountOnly) & want;
        for (SubMask m = counted; m != 0; m &= m - 1) {
          shed_sub(overload::ShedStage::kConnCreate, bit_index(m));
        }
        create_mask &= ~counted;
      }
      if (create_mask == 0) return;
      if (!admit_connection()) {
        shed_global(overload::ShedStage::kConnCreate);
        return;
      }
      id = create_conn(canon.key, canon.originator_is_first, create_mask,
                       results, view.tcp().has_value(), ts,
                       mbuf.rss_hash());
    } else {
      table_.touch(id, ts);
    }
  }

  ConnEntry& entry = table_.get(id);

  // Members whose packet filter first matched this connection on a
  // later packet (per-packet-varying predicates) join now.
  SubMask newcomers = want & ~entry.touched;
  if (newcomers != 0) {
    if (overload_ != nullptr) {
      const SubMask counted =
          staged_mask(overload::DegradeLevel::kCountOnly) & newcomers;
      for (SubMask m = counted; m != 0; m &= m - 1) {
        shed_sub(overload::ShedStage::kConnCreate, bit_index(m));
      }
      newcomers &= ~counted;
    }
    for (SubMask m = newcomers; m != 0; m &= m - 1) {
      const std::size_t sub = bit_index(m);
      join_sub(id, entry, sub, results[sub]);
    }
    settle_union(entry);
  }

  const bool from_orig =
      canon.originator_is_first == entry.from_first_is_orig;
  update_record(entry, view, from_orig, ts);
  if (entry.record.pkts_up > 0 && entry.record.pkts_down > 0 &&
      !entry.record.established) {
    entry.record.established = true;
    table_.mark_established(id, ts);
  }

  if (!defunct(entry)) {
    // Packet-level members: deliver once matched (their Track state),
    // buffer while their filter is pending (Fig. 4a, per member).
    const SubMask pkt_members = want & entry.alive() & packet_level_mask_;
    for (SubMask m = pkt_members; m != 0; m &= m - 1) {
      const std::size_t sub = bit_index(m);
      const auto bit = sub_bit(sub);
      if ((entry.matched & bit) != 0) {
        StageScope scope(stats_, Stage::kCallback, config_.instrument_stages,
                         &inst_);
        deliver_packet_sub(sub, mbuf);
      } else if ((entry.settled & bit) == 0) {
        if (overload_ != nullptr &&
            (staged_mask(overload::DegradeLevel::kShedReassembly) & bit) !=
                0) {
          shed_sub(overload::ShedStage::kBuffering, sub);
        } else if (!buffering_allowed()) {
          shed_sub(overload::ShedStage::kBuffering, sub);
        } else {
          auto& buf = entry.buffers[sub];
          if (buf.packets.size() >= config_.conn_packet_buffer) {
            heap_bytes_ -= buf.packets.front().length();
            buf.packet_bytes -= buf.packets.front().length();
            buf.packets.erase(buf.packets.begin());
          }
          heap_bytes_ += mbuf.length();
          buf.packet_bytes += mbuf.length();
          buf.packets.push_back(mbuf);
        }
      }
    }

    // Reassemble/probe/parse only while some member still consumes the
    // product (lazy reconstruction gated on the union of needs).
    const bool parsing = (entry.state == ConnState::kProbe ||
                          entry.state == ConnState::kParse) &&
                         parse_pending(entry) != 0;
    const bool streaming = (entry.alive() & stream_level_mask_) != 0;
    if (parsing || streaming) {
      feed_pdus(id, entry, mbuf, view, from_orig);
    }
  }

  const bool pure_ack = view.tcp() && view.tcp()->ack_flag() &&
                        !view.tcp()->syn() && !view.tcp()->fin() &&
                        !view.tcp()->rst() && view.l4_payload().empty();
  if (entry.record.saw_rst || (entry.fin_up && entry.fin_down && pure_ack)) {
    ++stats_.conns_terminated;
    if (inst_.conns_terminated != nullptr) inst_.conns_terminated->inc();
    terminate_conn(id, entry, core::TerminateReason::kNatural,
                   /*remove_from_table=*/true);
    return;  // entry removed; nothing left to offload
  }

  if (offload_requester_ != nullptr) {
    maybe_request_offload(id, entry);
  }
}

void MultiPipeline::maybe_request_offload(ConnId id, ConnEntry& entry) {
  if (entry.offload_pending || entry.offload_active) return;
  nic::OffloadAction action;
  if (defunct(entry)) {
    // Every member gave up: hardware can drop the rest of the flow.
    action = nic::OffloadAction::kDrop;
  } else if (entry.state == ConnState::kTrack &&
             parse_pending(entry) == 0 && entry.alive() != 0 &&
             (entry.alive() & ~conn_level_mask_) == 0) {
    // The settled mask is full and every surviving member subscribes at
    // the connection level: software only counts packets from here on.
    action = nic::OffloadAction::kCount;
  } else {
    // Packet/stream members need per-packet work; session members may
    // still match later sessions. Not offloadable.
    return;
  }
  core::OffloadRequest req;
  req.key = table_.key_of(id);
  req.rss_hash = entry.rss_hash;
  req.from_first_is_orig = entry.from_first_is_orig;
  req.is_tcp = entry.is_tcp;
  req.action = action;
  if (offload_requester_->request_install(offload_core_, req)) {
    entry.offload_pending = true;
  }
}

bool MultiPipeline::offload_park(const packet::FiveTuple& key,
                                 nic::OffloadSeed& seed_out) {
  const ConnId id = table_.find(key);
  if (id == Table::kInvalid) return false;
  ConnEntry& entry = table_.get(id);
  if (!entry.offload_pending || entry.offload_active) return false;
  seed_out.max_seq_end = {entry.max_seq_end[0], entry.max_seq_end[1]};
  seed_out.last_seq = {entry.last_seq[0], entry.last_seq[1]};
  seed_out.seq_seen = {entry.seq_seen[0], entry.seq_seen[1]};
  entry.offload_active = true;
  entry.offload_park_pkts = entry.record.pkts_up + entry.record.pkts_down;
  table_.park(id);
  return true;
}

bool MultiPipeline::offload_merge(const nic::OffloadEvictRecord& rec) {
  const ConnId id = table_.find(rec.key);
  if (id == Table::kInvalid) return false;
  ConnEntry& entry = table_.get(id);
  auto& r = entry.record;
  const bool seq_current =
      r.pkts_up + r.pkts_down == entry.offload_park_pkts;
  const auto& d = rec.deltas;
  r.pkts_up += d.pkts_up;
  r.pkts_down += d.pkts_down;
  r.bytes_up += d.bytes_up;
  r.bytes_down += d.bytes_down;
  r.payload_up += d.payload_up;
  r.payload_down += d.payload_down;
  r.ooo_up += d.ooo_up;
  r.ooo_down += d.ooo_down;
  r.dup_up += d.dup_up;
  r.dup_down += d.dup_down;
  r.last_ts_ns = std::max(r.last_ts_ns, d.last_ts_ns);
  if (seq_current && d.pkts() > 0) {
    entry.max_seq_end[0] = rec.seq.max_seq_end[0];
    entry.max_seq_end[1] = rec.seq.max_seq_end[1];
    entry.last_seq[0] = rec.seq.last_seq[0];
    entry.last_seq[1] = rec.seq.last_seq[1];
    entry.seq_seen[0] = rec.seq.seq_seen[0];
    entry.seq_seen[1] = rec.seq.seq_seen[1];
  }
  if (r.pkts_up > 0 && r.pkts_down > 0 && !r.established) {
    r.established = true;
    table_.mark_established(id, r.last_ts_ns);
  }
  entry.offload_pending = false;
  entry.offload_active = false;
  table_.touch(id, r.last_ts_ns);
  return true;
}

void MultiPipeline::offload_clear_pending(const packet::FiveTuple& key) {
  const ConnId id = table_.find(key);
  if (id == Table::kInvalid) return;
  ConnEntry& entry = table_.get(id);
  entry.offload_pending = false;
  if (entry.offload_active) {
    entry.offload_active = false;
    table_.touch(id, entry.record.last_ts_ns);
  }
}

MultiPipeline::ConnId MultiPipeline::create_conn(
    const packet::FiveTuple& canonical_key, bool originator_is_first,
    SubMask want, const filter::FilterResult* results, bool is_tcp,
    std::uint64_t ts_ns, std::uint32_t rss_hash) {
  ConnEntry entry;
  entry.from_first_is_orig = originator_is_first;
  entry.is_tcp = is_tcp;
  entry.rss_hash = rss_hash;
  entry.probe_alive = is_tcp ? tcp_candidate_mask_ : udp_candidate_mask_;
  entry.resume.assign(sub_stats_.size(), 0);
  entry.buffers.resize(sub_stats_.size());
  entry.record.tuple = oriented(canonical_key, originator_is_first);
  entry.record.first_ts_ns = ts_ns;
  entry.record.last_ts_ns = ts_ns;

  ++stats_.conns_created;
  if (inst_.conns_created != nullptr) inst_.conns_created->inc();
  if (spans_ != nullptr) {
    spans_->record(telemetry::SpanEvent::kConnCreated, canonical_key.hash(),
                   ts_ns);
  }

  for (SubMask m = want; m != 0; m &= m - 1) {
    join_sub(Table::kInvalid, entry, bit_index(m), results[bit_index(m)]);
  }
  settle_union(entry);
  return table_.insert(canonical_key, std::move(entry), ts_ns);
}

void MultiPipeline::join_sub(ConnId id, ConnEntry& entry, std::size_t sub,
                             const filter::FilterResult& pf_result) {
  const auto bit = sub_bit(sub);
  entry.touched |= bit;
  entry.resume[sub] = pf_result.node_id;

  if (pf_result.terminal()) {
    mark_matched(entry, sub);
    entry.early |= bit;
    entry.conn_ran |= bit;
    if (level(sub) == Level::kConnection || level(sub) == Level::kStream) {
      // Fully matched: no parsing needed, ever (lazy principle, §5.2).
      // Session-level members stay unsettled to collect every session;
      // packet-level packet-terminal members took the fast path and
      // never reach here.
      entry.settled |= bit;
    }
  }

  switch (entry.state) {
    case ConnState::kProbe:
      // Session-rung staging: a member that would start probe/parse
      // work settles immediately instead (mirrors the single pipeline's
      // create-time shed).
      if ((parse_pending(entry) & bit) != 0 &&
          (staged_mask(overload::DegradeLevel::kShedSessions) & bit) != 0) {
        shed_sub(overload::ShedStage::kSession, sub);
        settle_sub_without_parsing(id, entry, sub);
      }
      break;
    case ConnState::kParse:
      // Late join with the protocol already identified: run this
      // member's connection filter right away.
      if ((parse_pending(entry) & bit) != 0) {
        run_conn_filter_sub(id, entry, sub);
        if ((parse_pending(entry) & bit) != 0 &&
            (staged_mask(overload::DegradeLevel::kShedSessions) & bit) != 0) {
          shed_sub(overload::ShedStage::kSession, sub);
          settle_sub_without_parsing(id, entry, sub);
        }
      }
      break;
    case ConnState::kTrack:
      // The shared probe/parse machinery is gone: resolve with what is
      // known (the probed app_proto, or 0 if probing failed/never ran).
      if ((parse_pending(entry) & bit) != 0) {
        settle_sub_without_parsing(id, entry, sub);
      }
      break;
    case ConnState::kDelete:
      break;  // unreachable: kDelete is applied, never stored
  }
}

void MultiPipeline::update_record(ConnEntry& entry,
                                  const packet::PacketView& view,
                                  bool from_orig, std::uint64_t ts_ns) {
  auto& rec = entry.record;
  rec.last_ts_ns = std::max(rec.last_ts_ns, ts_ns);
  const auto wire_bytes = view.mbuf().length();
  const auto payload_bytes = view.l4_payload().size();
  if (from_orig) {
    ++rec.pkts_up;
    rec.bytes_up += wire_bytes;
    rec.payload_up += payload_bytes;
  } else {
    ++rec.pkts_down;
    rec.bytes_down += wire_bytes;
    rec.payload_down += payload_bytes;
  }
  if (view.tcp()) {
    const auto& tcp = *view.tcp();
    if (tcp.syn() && !tcp.ack_flag()) rec.saw_syn = true;
    if (tcp.syn() && tcp.ack_flag()) rec.saw_synack = true;
    if (tcp.rst()) rec.saw_rst = true;
    if (tcp.fin()) {
      rec.saw_fin = true;
      (from_orig ? entry.fin_up : entry.fin_down) = true;
    }
    if (payload_bytes > 0 || tcp.syn() || tcp.fin()) {
      const int dir = from_orig ? 0 : 1;
      const std::uint32_t seq = tcp.seq();
      std::uint32_t span = static_cast<std::uint32_t>(payload_bytes);
      if (tcp.syn()) ++span;
      if (tcp.fin()) ++span;
      const std::uint32_t end = seq + span;
      if (entry.seq_seen[dir] &&
          static_cast<std::int32_t>(seq - entry.max_seq_end[dir]) < 0) {
        if (seq == entry.last_seq[dir]) {
          ++(from_orig ? rec.dup_up : rec.dup_down);
        } else {
          ++(from_orig ? rec.ooo_up : rec.ooo_down);
        }
      }
      if (!entry.seq_seen[dir] ||
          static_cast<std::int32_t>(end - entry.max_seq_end[dir]) > 0) {
        entry.max_seq_end[dir] = end;
      }
      entry.last_seq[dir] = seq;
      entry.seq_seen[dir] = true;
    }
  }
}

void MultiPipeline::feed_pdus(ConnId id, ConnEntry& entry, packet::Mbuf& mbuf,
                              const packet::PacketView& view,
                              bool from_orig) {
  if (!entry.is_tcp) {
    // UDP: each datagram is already an in-order PDU.
    if (view.l4_payload().empty()) return;
    stream::L4Pdu pdu;
    pdu.mbuf = mbuf;
    pdu.payload = view.l4_payload();
    pdu.from_originator = from_orig;
    pdu.ts_ns = mbuf.timestamp_ns();
    const SubMask streaming = entry.alive() & stream_level_mask_;
    if (streaming != 0) {
      const SubMask shed_rm =
          overload_ != nullptr
              ? staged_mask(overload::DegradeLevel::kShedReassembly)
              : SubMask{0};
      for (SubMask m = streaming; m != 0; m &= m - 1) {
        const std::size_t sub = bit_index(m);
        if ((shed_rm & sub_bit(sub)) != 0) {
          shed_sub(overload::ShedStage::kReassembly, sub);
        } else {
          stream_pdu_sub(entry, sub, pdu);
        }
      }
    }
    if ((entry.state == ConnState::kProbe ||
         entry.state == ConnState::kParse) &&
        parse_pending(entry) != 0) {
      handle_pdu(id, entry, std::move(pdu));
    }
    return;
  }

  // TCP: one shared reassembler pair serves every consuming member —
  // skip the work only when no member consumes the product.
  SubMask consumers = entry.alive() & stream_level_mask_;
  if (entry.state == ConnState::kProbe || entry.state == ConnState::kParse) {
    consumers |= parse_pending(entry);
  }
  if (consumers == 0) return;
  if (reassembly_shed()) {  // global reassembly byte budget
    shed_global(overload::ShedStage::kReassembly);
    return;
  }
  if (overload_ != nullptr) {
    const SubMask rm = staged_mask(overload::DegradeLevel::kShedReassembly);
    if ((consumers & ~rm) == 0) {
      // Every consumer is staged past the reassembly rung.
      for (SubMask m = consumers; m != 0; m &= m - 1) {
        shed_sub(overload::ShedStage::kReassembly, bit_index(m));
      }
      return;
    }
  }

  const auto& tcp = *view.tcp();
  stream::L4Pdu pdu;
  pdu.mbuf = mbuf;
  pdu.payload = view.l4_payload();
  pdu.seq = tcp.seq();
  pdu.tcp_flags = tcp.flags();
  pdu.from_originator = from_orig;
  pdu.ts_ns = mbuf.timestamp_ns();

  auto& reasm = from_orig ? entry.reasm_up : entry.reasm_down;
  if (!reasm) {
    reasm = std::make_unique<stream::StreamReassembler>(config_.ooo_capacity);
    heap_bytes_ += kReassemblerBytes;
  }

  std::vector<stream::L4Pdu> ready;
  {
    StageScope scope(stats_, Stage::kReassembly, config_.instrument_stages,
                     &inst_);
    const auto pending_before = reasm->pending();
    reasm->push(std::move(pdu), ready);
    const auto pending_after = reasm->pending();
    const auto delta = (static_cast<std::int64_t>(pending_after) -
                        static_cast<std::int64_t>(pending_before)) *
                       static_cast<std::int64_t>(kOooPduEstimateBytes);
    heap_bytes_ += delta;
    reasm_hold_bytes_ += delta;
  }

  for (auto& ready_pdu : ready) {
    if (defunct(entry)) break;
    if (ready_pdu.len() == 0) continue;  // bare SYN/FIN/ACK
    const SubMask streaming = entry.alive() & stream_level_mask_;
    if (streaming != 0) {
      const SubMask rm =
          overload_ != nullptr
              ? staged_mask(overload::DegradeLevel::kShedReassembly)
              : SubMask{0};
      for (SubMask m = streaming; m != 0; m &= m - 1) {
        const std::size_t sub = bit_index(m);
        if ((rm & sub_bit(sub)) != 0) {
          shed_sub(overload::ShedStage::kReassembly, sub);
        } else {
          stream_pdu_sub(entry, sub, ready_pdu);
        }
      }
      if (defunct(entry)) break;
    }
    if ((entry.state == ConnState::kProbe ||
         entry.state == ConnState::kParse) &&
        parse_pending(entry) != 0) {
      handle_pdu(id, entry, std::move(ready_pdu));
    }
  }
}

void MultiPipeline::deliver_packet_sub(std::size_t sub,
                                       const packet::Mbuf& mbuf) {
  const std::uint64_t t0 = attribute_cycles_ ? util::rdtsc() : 0;
  set_.at(sub).deliver_packet(mbuf);
  ++stats_.delivered_packets;
  if (inst_.callbacks != nullptr) inst_.callbacks->inc();
  ++sub_stats_[sub].delivered;
  if (auto* cell = sub_inst_[sub].delivered) cell->inc();
  if (attribute_cycles_) add_sub_cycles(sub, util::rdtsc() - t0);
}

void MultiPipeline::deliver_stream_chunk(const ConnEntry& entry,
                                         std::size_t sub,
                                         const stream::L4Pdu& pdu) {
  StageScope scope(stats_, Stage::kCallback, config_.instrument_stages,
                   &inst_);
  const std::uint64_t t0 = attribute_cycles_ ? util::rdtsc() : 0;
  core::StreamChunk chunk;
  chunk.tuple = entry.record.tuple;
  chunk.ts_ns = pdu.ts_ns;
  chunk.from_originator = pdu.from_originator;
  chunk.data = pdu.payload;
  set_.at(sub).deliver_stream(chunk);
  ++stats_.delivered_packets;
  if (inst_.callbacks != nullptr) inst_.callbacks->inc();
  ++sub_stats_[sub].delivered;
  if (auto* cell = sub_inst_[sub].delivered) cell->inc();
  if (attribute_cycles_) add_sub_cycles(sub, util::rdtsc() - t0);
}

void MultiPipeline::stream_pdu_sub(ConnEntry& entry, std::size_t sub,
                                   const stream::L4Pdu& pdu) {
  const auto bit = sub_bit(sub);
  if ((entry.matched & bit) != 0) {
    deliver_stream_chunk(entry, sub, pdu);
    return;
  }
  if (!buffering_allowed()) {
    shed_sub(overload::ShedStage::kBuffering, sub);
    return;
  }
  auto& buf = entry.buffers[sub];
  if (buf.pdus.size() >= config_.conn_packet_buffer) {
    heap_bytes_ -=
        static_cast<std::int64_t>(buf.pdus.front().payload.size());
    buf.pdu_bytes -= buf.pdus.front().payload.size();
    buf.pdus.erase(buf.pdus.begin());
  }
  heap_bytes_ += static_cast<std::int64_t>(pdu.payload.size());
  buf.pdu_bytes += pdu.payload.size();
  buf.pdus.push_back(pdu);
}

void MultiPipeline::flush_buffered_sub(ConnEntry& entry, std::size_t sub) {
  auto& buf = entry.buffers[sub];
  if (buf.packets.empty()) return;
  StageScope scope(stats_, Stage::kCallback, config_.instrument_stages,
                   &inst_);
  for (const auto& mbuf : buf.packets) {
    deliver_packet_sub(sub, mbuf);
  }
  heap_bytes_ -= static_cast<std::int64_t>(buf.packet_bytes);
  buf.packet_bytes = 0;
  buf.packets.clear();
  buf.packets.shrink_to_fit();
}

void MultiPipeline::flush_on_match_sub(ConnEntry& entry, std::size_t sub) {
  if (level(sub) == Level::kPacket) {
    flush_buffered_sub(entry, sub);
  } else if (level(sub) == Level::kStream) {
    auto& buf = entry.buffers[sub];
    for (const auto& pdu : buf.pdus) {
      deliver_stream_chunk(entry, sub, pdu);
    }
    heap_bytes_ -= static_cast<std::int64_t>(buf.pdu_bytes);
    buf.pdu_bytes = 0;
    buf.pdus.clear();
    buf.pdus.shrink_to_fit();
  }
}

void MultiPipeline::mark_matched(ConnEntry& entry, std::size_t sub) {
  const auto bit = sub_bit(sub);
  if ((entry.matched & bit) != 0) return;
  entry.matched |= bit;
  ++sub_stats_[sub].conns_matched;
  if (auto* cell = sub_inst_[sub].matched) cell->inc();
}

void MultiPipeline::drop_sub(ConnEntry& entry, std::size_t sub,
                             bool count_filter_drop) {
  const auto bit = sub_bit(sub);
  if ((entry.dropped & bit) != 0) return;
  entry.dropped |= bit;
  if (count_filter_drop) {
    entry.any_filter_drop = true;
    ++sub_stats_[sub].dropped_filter;
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kFilterDropped,
                     entry.record.tuple.hash(), entry.record.last_ts_ns, 0,
                     nullptr, static_cast<std::int32_t>(sub));
    }
  }
  release_sub_buffers(entry, sub);
  if (entry.touched != 0 && entry.alive() == 0) {
    // The last member gave up: free the shared state immediately (later
    // packets cost a table lookup and nothing more).
    to_tombstone(entry);
  }
}

void MultiPipeline::release_sub_buffers(ConnEntry& entry, std::size_t sub) {
  if (entry.buffers.empty()) return;
  auto& buf = entry.buffers[sub];
  heap_bytes_ -= static_cast<std::int64_t>(buf.packet_bytes);
  buf.packet_bytes = 0;
  buf.packets.clear();
  buf.packets.shrink_to_fit();
  heap_bytes_ -= static_cast<std::int64_t>(buf.pdu_bytes);
  buf.pdu_bytes = 0;
  buf.pdus.clear();
  buf.pdus.shrink_to_fit();
}

void MultiPipeline::handle_pdu(ConnId id, ConnEntry& entry,
                               stream::L4Pdu pdu) {
  if (defunct(entry)) return;
  if (entry.state != ConnState::kProbe && entry.state != ConnState::kParse) {
    return;
  }
  if (parse_pending(entry) == 0) return;

  // Session-rung staging: members whose staged level reached
  // kShedSessions settle now; the rest keep the parser alive.
  if (overload_ != nullptr) {
    const SubMask sessions_shed =
        staged_mask(overload::DegradeLevel::kShedSessions) &
        parse_pending(entry);
    if (sessions_shed != 0) {
      for (SubMask m = sessions_shed; m != 0; m &= m - 1) {
        const std::size_t sub = bit_index(m);
        shed_sub(overload::ShedStage::kSession, sub);
        settle_sub_without_parsing(id, entry, sub);
      }
      settle_union(entry);
      if (entry.state != ConnState::kProbe &&
          entry.state != ConnState::kParse) {
        return;
      }
      if (parse_pending(entry) == 0) return;
    }
  }
  if (!parse_budget_ok(pdu.ts_ns)) {
    const SubMask pend = parse_pending(entry);
    for (SubMask m = pend; m != 0; m &= m - 1) {
      const std::size_t sub = bit_index(m);
      shed_sub(overload::ShedStage::kParseBudget, sub);
      settle_sub_without_parsing(id, entry, sub);
    }
    settle_union(entry);
    return;
  }

  const bool metered = config_.overload.enabled &&
                       config_.overload.parse_cycles_per_sec != 0;
  // Probe/parse cycles are shared work: attribute them in equal shares
  // to the members the work was done for.
  const SubMask attributed =
      attribute_cycles_ ? parse_pending(entry) : SubMask{0};
  const bool timed = metered || attributed != 0;
  const std::uint64_t t0 = timed ? util::rdtsc() : 0;
  if (entry.state == ConnState::kProbe) {
    probe_pdu(id, entry, pdu);
  } else {
    parse_pdu(id, entry, pdu);
  }
  if (timed) {
    const std::uint64_t spent = util::rdtsc() - t0;
    if (metered) parse_tokens_ -= static_cast<std::int64_t>(spent);
    if (attributed != 0) {
      const auto share =
          spent / static_cast<std::uint64_t>(std::popcount(attributed));
      for (SubMask m = attributed; m != 0; m &= m - 1) {
        add_sub_cycles(bit_index(m), share);
      }
    }
  }
}

void MultiPipeline::probe_pdu(ConnId id, ConnEntry& entry,
                              const stream::L4Pdu& pdu) {
  ++entry.probe_attempts;

  stream::L4Pdu probe_view = pdu;
  constexpr std::size_t kPrefixCap = 256;
  if (entry.is_tcp) {
    auto& prefix = entry.probe_prefix[pdu.from_originator ? 0 : 1];
    const std::size_t take =
        std::min(pdu.payload.size(),
                 kPrefixCap > prefix.size() ? kPrefixCap - prefix.size() : 0);
    prefix.insert(prefix.end(), pdu.payload.begin(),
                  pdu.payload.begin() + static_cast<std::ptrdiff_t>(take));
    heap_bytes_ += static_cast<std::int64_t>(pdu.payload.size());
    entry.probe_pdus.push_back(pdu);
    probe_view.payload = {prefix.data(), prefix.size()};
  }

  std::size_t identified = candidates_.size();
  {
    StageScope scope(stats_, Stage::kParsing, config_.instrument_stages,
                     &inst_);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const auto bit = 1u << i;
      if (!(entry.probe_alive & bit)) continue;
      switch (candidates_[i].prototype->probe(probe_view)) {
        case protocols::ProbeResult::kYes:
          identified = i;
          break;
        case protocols::ProbeResult::kNo:
          entry.probe_alive &= ~bit;
          break;
        case protocols::ProbeResult::kUnsure:
          break;
      }
      if (identified != candidates_.size()) break;
    }
  }

  if (identified != candidates_.size()) {
    const auto& candidate = candidates_[identified];
    entry.app_proto = candidate.app_proto_id;
    entry.record.app_proto = candidate.name;
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kConnProbed,
                     entry.record.tuple.hash(), pdu.ts_ns, 0,
                     candidate.name.c_str());
    }
    entry.parser = parser_registry_.create(candidate.name);
    heap_bytes_ += kParserEstimateBytes;
    entry.state = ConnState::kParse;
    const SubMask pend = parse_pending(entry);
    for (SubMask m = pend; m != 0; m &= m - 1) {
      run_conn_filter_sub(id, entry, bit_index(m));
    }
    settle_union(entry);
    if (!defunct(entry) && entry.state == ConnState::kParse && entry.parser) {
      if (entry.is_tcp) {
        // Replay everything consumed while probing, in arrival order.
        for (const auto& held_pdu : entry.probe_pdus) {
          heap_bytes_ -= static_cast<std::int64_t>(held_pdu.payload.size());
        }
        auto held = std::move(entry.probe_pdus);
        clear_probe_state(entry);
        for (auto& replay : held) {
          if (defunct(entry) || entry.state != ConnState::kParse) break;
          parse_pdu(id, entry, replay);
        }
      } else {
        parse_pdu(id, entry, pdu);
      }
    } else {
      clear_probe_state(entry);
    }
    return;
  }

  if (entry.probe_alive == 0 ||
      entry.probe_attempts >= config_.max_probe_pdus) {
    // Protocol unknown: every pending member resolves with app_proto = 0.
    ++stats_.probe_failures;
    entry.app_proto = 0;
    clear_probe_state(entry);
    const SubMask pend = parse_pending(entry);
    for (SubMask m = pend; m != 0; m &= m - 1) {
      settle_sub_without_parsing(id, entry, bit_index(m));
    }
    settle_union(entry);
  }
}

void MultiPipeline::clear_probe_state(ConnEntry& entry) {
  for (const auto& held : entry.probe_pdus) {
    heap_bytes_ -= static_cast<std::int64_t>(held.payload.size());
  }
  entry.probe_pdus.clear();
  entry.probe_pdus.shrink_to_fit();
  for (auto& prefix : entry.probe_prefix) {
    prefix.clear();
    prefix.shrink_to_fit();
  }
}

void MultiPipeline::run_conn_filter_sub(ConnId id, ConnEntry& entry,
                                        std::size_t sub) {
  (void)id;
  const auto bit = sub_bit(sub);
  if ((entry.matched & bit) != 0) {
    // Already fully matched at the packet layer. Session-level members
    // keep parsing (the session filter auto-matches for them); every
    // other level settled when it matched.
    if (level(sub) == Level::kSession && !entry.parser) {
      drop_sub(entry, sub);
    }
    return;
  }

  const auto result =
      forest_.conn_filter(sub, entry.resume[sub], entry.app_proto);
  entry.conn_ran |= bit;
  switch (result.kind) {
    case MatchKind::kNoMatch:
      drop_sub(entry, sub);
      return;
    case MatchKind::kTerminal:
      mark_matched(entry, sub);
      entry.early |= bit;
      entry.resume[sub] = result.node_id;
      switch (level(sub)) {
        case Level::kPacket:
        case Level::kStream:
          flush_on_match_sub(entry, sub);
          entry.settled |= bit;
          break;
        case Level::kConnection:
          entry.settled |= bit;  // record accumulates; parsing stops
          break;
        case Level::kSession:
          if (!entry.parser) drop_sub(entry, sub);
          break;  // stay pending to collect sessions
      }
      return;
    case MatchKind::kNonTerminal:
      // Session predicates pending: this member must parse to decide.
      entry.resume[sub] = result.node_id;
      if (!entry.parser) drop_sub(entry, sub);
      return;
  }
}

void MultiPipeline::parse_pdu(ConnId id, ConnEntry& entry,
                              const stream::L4Pdu& pdu) {
  protocols::ParseResult result;
  {
    StageScope scope(stats_, Stage::kParsing, config_.instrument_stages,
                     &inst_);
    result = entry.parser->parse(pdu);
  }

  auto sessions = entry.parser->take_sessions();
  if (!sessions.empty()) {
    handle_sessions(id, entry, std::move(sessions));
  }
  if (defunct(entry) || entry.state != ConnState::kParse) return;

  if (result == protocols::ParseResult::kDone ||
      result == protocols::ParseResult::kError) {
    // The parser will produce no further sessions: every still-pending
    // member resolves now.
    const SubMask pend = parse_pending(entry);
    for (SubMask m = pend; m != 0; m &= m - 1) {
      const std::size_t sub = bit_index(m);
      const auto bit = sub_bit(sub);
      if (level(sub) == Level::kSession) {
        drop_sub(entry, sub,
                 /*count_filter_drop=*/(entry.matched & bit) == 0);
      } else if ((entry.matched & bit) != 0) {
        flush_on_match_sub(entry, sub);
        entry.settled |= bit;
      } else {
        drop_sub(entry, sub);
      }
    }
    settle_union(entry);
  }
}

void MultiPipeline::handle_sessions(ConnId id, ConnEntry& entry,
                                    std::vector<protocols::Session> sessions) {
  (void)id;
  for (auto& session : sessions) {
    ++stats_.sessions_parsed;
    if (inst_.sessions != nullptr) inst_.sessions->inc();
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kSessionParsed,
                     entry.record.tuple.hash(), entry.record.last_ts_ns, 0,
                     entry.record.app_proto.c_str());
    }

    // One shared record per session: every matching session-level member
    // receives the same object (callbacks take a const reference).
    core::SessionRecord record;
    record.tuple = entry.record.tuple;
    record.ts_ns = entry.record.last_ts_ns;
    record.session = std::move(session);

    // One memo epoch per session: a predicate shared by several members
    // (the expensive regexes) evaluates exactly once.
    session_scratch_.begin();
    const SubMask pend = parse_pending(entry);
    for (SubMask m = pend; m != 0; m &= m - 1) {
      const std::size_t sub = bit_index(m);
      const auto bit = sub_bit(sub);
      bool matched;
      {
        StageScope scope(stats_, Stage::kSessionFilter,
                         config_.instrument_stages, &inst_);
        const std::uint64_t t0 = attribute_cycles_ ? util::rdtsc() : 0;
        // A packet/connection-layer terminal match covers every session;
        // a previous session-layer match does not — each session is
        // evaluated on its own.
        matched = (entry.early & bit) != 0 ||
                  forest_.session_filter(sub, entry.resume[sub],
                                         record.session, session_scratch_);
        if (attribute_cycles_) add_sub_cycles(sub, util::rdtsc() - t0);
      }

      const auto hint = matched ? entry.parser->session_match_state()
                                : entry.parser->session_nomatch_state();

      if (matched) {
        mark_matched(entry, sub);
        if (level(sub) == Level::kSession) {
          StageScope scope(stats_, Stage::kCallback,
                           config_.instrument_stages, &inst_);
          const std::uint64_t t0 = attribute_cycles_ ? util::rdtsc() : 0;
          set_.at(sub).deliver_session(record);
          ++stats_.delivered_sessions;
          if (inst_.callbacks != nullptr) inst_.callbacks->inc();
          ++sub_stats_[sub].delivered;
          if (auto* cell = sub_inst_[sub].delivered) cell->inc();
          if (spans_ != nullptr) {
            spans_->record(telemetry::SpanEvent::kDelivered,
                           entry.record.tuple.hash(),
                           entry.record.last_ts_ns, 0, nullptr,
                           static_cast<std::int32_t>(sub));
          }
          if (attribute_cycles_) add_sub_cycles(sub, util::rdtsc() - t0);
        } else {
          flush_on_match_sub(entry, sub);
        }
      }

      // Per-member post-session transition (the hint logic of the
      // single pipeline's apply_post_session_state).
      if (level(sub) == Level::kSession) {
        switch (hint) {
          case ConnState::kDelete:
            drop_sub(entry, sub, /*count_filter_drop=*/!matched);
            break;
          case ConnState::kTrack:
            entry.settled |= bit;
            break;
          case ConnState::kParse:
          case ConnState::kProbe:
            break;  // keep parsing
        }
      } else {
        if (matched) {
          entry.settled |= bit;
        } else if (hint == ConnState::kDelete) {
          drop_sub(entry, sub);
        }
      }
    }
    settle_union(entry);
    if (defunct(entry) || entry.state != ConnState::kParse) break;
  }
}

void MultiPipeline::settle_sub_without_parsing(ConnId id, ConnEntry& entry,
                                               std::size_t sub) {
  (void)id;
  const auto bit = sub_bit(sub);
  if ((entry.dropped & bit) != 0 || (entry.settled & bit) != 0) return;
  if (level(sub) == Level::kSession) {
    // Sessions are exactly what this member is giving up on. Not a
    // filter decision, so it is not counted as one.
    drop_sub(entry, sub, /*count_filter_drop=*/false);
    return;
  }
  if ((entry.matched & bit) != 0) {
    flush_on_match_sub(entry, sub);
    entry.settled |= bit;
    return;
  }
  if ((entry.conn_ran & bit) == 0) {
    // Resolve the way a failed probe would: with whatever protocol is
    // known (0 while probing; the identified one on a late join).
    const auto result =
        forest_.conn_filter(sub, entry.resume[sub], entry.app_proto);
    entry.conn_ran |= bit;
    switch (result.kind) {
      case MatchKind::kNoMatch:
        drop_sub(entry, sub);
        return;
      case MatchKind::kTerminal:
        mark_matched(entry, sub);
        entry.early |= bit;
        entry.resume[sub] = result.node_id;
        flush_on_match_sub(entry, sub);
        entry.settled |= bit;
        return;
      case MatchKind::kNonTerminal:
        entry.resume[sub] = result.node_id;
        break;
    }
  }
  // Still waiting on session predicates that will never be evaluated.
  drop_sub(entry, sub, /*count_filter_drop=*/false);
}

void MultiPipeline::settle_union(ConnEntry& entry) {
  if ((entry.state == ConnState::kProbe ||
       entry.state == ConnState::kParse) &&
      parse_pending(entry) != 0) {
    return;  // some member still wants probe/parse work
  }
  if (entry.alive() != 0) {
    entry.state = ConnState::kTrack;
    clear_probe_state(entry);
    if (entry.parser) {
      entry.parser.reset();
      heap_bytes_ -= kParserEstimateBytes;
    }
    if ((entry.alive() & stream_level_mask_) == 0) {
      // No stream member left alive: reassembly has no consumer.
      for (auto* reasm : {&entry.reasm_up, &entry.reasm_down}) {
        if (*reasm) {
          heap_bytes_ -= (*reasm)->pending() * kOooPduEstimateBytes;
          heap_bytes_ -= kReassemblerBytes;
          reasm_hold_bytes_ -= static_cast<std::int64_t>(
              (*reasm)->pending() * kOooPduEstimateBytes);
          reasm->reset();
        }
      }
    }
  } else if (entry.touched != 0) {
    to_tombstone(entry);
  }
}

void MultiPipeline::to_tombstone(ConnEntry& entry) {
  clear_probe_state(entry);
  if (entry.parser) {
    entry.parser.reset();
    heap_bytes_ -= kParserEstimateBytes;
  }
  for (auto* reasm : {&entry.reasm_up, &entry.reasm_down}) {
    if (*reasm) {
      heap_bytes_ -= (*reasm)->pending() * kOooPduEstimateBytes;
      heap_bytes_ -= kReassemblerBytes;
      reasm_hold_bytes_ -= static_cast<std::int64_t>(
          (*reasm)->pending() * kOooPduEstimateBytes);
      reasm->reset();
    }
  }
  for (std::size_t sub = 0; sub < entry.buffers.size(); ++sub) {
    release_sub_buffers(entry, sub);
  }
  if (entry.any_filter_drop && !entry.drop_counted) {
    ++stats_.conns_dropped_filter;
    entry.drop_counted = true;
  }
}

void MultiPipeline::terminate_conn(ConnId id, ConnEntry& entry,
                                   core::TerminateReason reason,
                                   bool remove_from_table) {
  // Flush any partially parsed session (e.g. a ClientHello whose
  // handshake never completed) through the session filter.
  if (!defunct(entry) && entry.parser &&
      (entry.state == ConnState::kProbe ||
       entry.state == ConnState::kParse)) {
    auto sessions = entry.parser->drain_sessions();
    if (!sessions.empty()) {
      handle_sessions(id, entry, std::move(sessions));
    }
  }

  // Analytics sink: one FlowRecord per connection matched by *any*
  // member (never one per member — the archive is deduplicated by
  // construction).
  if (sink_ != nullptr && (entry.alive() & entry.matched) != 0) {
    sink_->append(sink_core_, sink::FlowRecord::from(entry.record));
  }

  // Connection records and end-of-stream markers, per matched member in
  // member order.
  const SubMask conn_deliver = entry.alive() & entry.matched & conn_level_mask_;
  for (SubMask m = conn_deliver; m != 0; m &= m - 1) {
    const std::size_t sub = bit_index(m);
    StageScope scope(stats_, Stage::kCallback, config_.instrument_stages,
                     &inst_);
    const std::uint64_t t0 = attribute_cycles_ ? util::rdtsc() : 0;
    set_.at(sub).deliver_connection(entry.record);
    ++stats_.delivered_conns;
    if (inst_.callbacks != nullptr) inst_.callbacks->inc();
    ++sub_stats_[sub].delivered;
    if (auto* cell = sub_inst_[sub].delivered) cell->inc();
    if (spans_ != nullptr) {
      spans_->record(telemetry::SpanEvent::kDelivered,
                     entry.record.tuple.hash(), entry.record.last_ts_ns, 0,
                     nullptr, static_cast<std::int32_t>(sub));
    }
    if (attribute_cycles_) add_sub_cycles(sub, util::rdtsc() - t0);
  }

  const SubMask eos = entry.alive() & entry.matched & stream_level_mask_;
  for (SubMask m = eos; m != 0; m &= m - 1) {
    const std::size_t sub = bit_index(m);
    StageScope scope(stats_, Stage::kCallback, config_.instrument_stages,
                     &inst_);
    const std::uint64_t t0 = attribute_cycles_ ? util::rdtsc() : 0;
    core::StreamChunk chunk;
    chunk.tuple = entry.record.tuple;
    chunk.ts_ns = entry.record.last_ts_ns;
    chunk.end_of_stream = true;
    set_.at(sub).deliver_stream(chunk);
    if (inst_.callbacks != nullptr) inst_.callbacks->inc();
    ++sub_stats_[sub].delivered;
    if (auto* cell = sub_inst_[sub].delivered) cell->inc();
    if (attribute_cycles_) add_sub_cycles(sub, util::rdtsc() - t0);
  }

  if (spans_ != nullptr) {
    const auto conn_id = entry.record.tuple.hash();
    const auto first = entry.record.first_ts_ns;
    const auto last = entry.record.last_ts_ns;
    spans_->record(telemetry::SpanEvent::kConnSpan, conn_id, first,
                   last > first ? last - first : 0,
                   entry.record.app_proto.c_str());
    if (reason != core::TerminateReason::kExpired) {
      spans_->record(telemetry::SpanEvent::kTerminated, conn_id, last);
    }
  }

  to_tombstone(entry);
  if (remove_from_table) {
    table_.remove(id);
  }
}

void MultiPipeline::finish() {
  std::vector<ConnId> live;
  table_.for_each([&](ConnId id, ConnEntry&) { live.push_back(id); });
  for (const auto id : live) {
    terminate_conn(id, table_.get(id), core::TerminateReason::kShutdown,
                   /*remove_from_table=*/true);
  }
}

}  // namespace retina::multisub
